"""The generic graph pattern → subquery compilation."""

import pytest

from repro.core.pattern import GraphPattern, build_subqueries
from repro.sparql.executor import QueryExecutor


def test_pattern_validation():
    with pytest.raises(ValueError):
        GraphPattern(direction=3, hops=1)
    with pytest.raises(ValueError):
        GraphPattern(direction=1, hops=0)


def test_pattern_labels():
    assert GraphPattern(1, 1).label == "d1h1"
    assert GraphPattern(2, 2).label == "d2h2"


def test_direction_sequences():
    assert GraphPattern(1, 2).direction_sequences(2) == [("out", "out")]
    sequences = GraphPattern(2, 2).direction_sequences(2)
    assert len(sequences) == 4
    assert ("out", "in") in sequences


@pytest.mark.parametrize(
    "direction,hops,expected",
    [(1, 1, 1), (2, 1, 2), (1, 2, 2), (2, 2, 6)],
)
def test_subquery_count_nc(toy_kg, toy_task, direction, hops, expected):
    subqueries = build_subqueries(toy_kg, toy_task, GraphPattern(direction, hops))
    assert len(subqueries) == expected
    assert all(sq.kind == "spo" for sq in subqueries)


def test_subqueries_project_spo(toy_kg, toy_task):
    subqueries = build_subqueries(toy_kg, toy_task, GraphPattern(2, 1))
    executor = QueryExecutor(toy_kg)
    for subquery in subqueries:
        result = executor.evaluate(subquery.query)
        assert result.variables == ["s", "p", "o"]


def test_d1h1_returns_exactly_outgoing_triples(toy_kg, toy_task):
    subqueries = build_subqueries(toy_kg, toy_task, GraphPattern(1, 1))
    executor = QueryExecutor(toy_kg)
    triples = executor.evaluate(subqueries[0].query).to_triples().to_set()
    expected = set()
    paper_class = toy_kg.class_vocab.id("Paper")
    for s, p, o in toy_kg.triples:
        if toy_kg.node_types[s] == paper_class:
            expected.add((s, p, o))
    assert triples == expected


def test_h2_second_hop_reaches_two_hop_triples(toy_kg, toy_task):
    subqueries = build_subqueries(toy_kg, toy_task, GraphPattern(1, 2))
    executor = QueryExecutor(toy_kg)
    hop2 = executor.evaluate(subqueries[1].query).to_triples().to_set()
    # p0 cites p2, p2 hasAuthor a1 → second-hop triple (p2, hasAuthor, a1).
    p2 = toy_kg.node_vocab.id("p2")
    a1 = toy_kg.node_vocab.id("a1")
    has_author = toy_kg.relation_vocab.id("hasAuthor")
    assert (p2, has_author, a1) in hop2


def test_lp_task_gets_bridge_subquery(toy_kg):
    import numpy as np

    from repro.core.tasks import LinkPredictionTask, Split

    task = LinkPredictionTask(
        name="HA", predicate=toy_kg.relation_vocab.id("hasAuthor"),
        head_class=toy_kg.class_vocab.id("Paper"),
        tail_class=toy_kg.class_vocab.id("Author"),
        edges=np.asarray([[0, 6]]),
        split=Split(np.asarray([0]), np.asarray([]), np.asarray([])),
    )
    subqueries = build_subqueries(toy_kg, task, GraphPattern(1, 1))
    kinds = [sq.kind for sq in subqueries]
    # One spo subquery per target class (Paper, Author) + the bridge.
    assert kinds.count("spo") == 2
    assert kinds.count("bridge") == 1
    bridge = [sq for sq in subqueries if sq.kind == "bridge"][0]
    assert bridge.bridge_predicate == task.predicate
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(bridge.query)
    assert result.variables == ["s", "o"]
    assert result.num_rows == 6  # all hasAuthor edges
