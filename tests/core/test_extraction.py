"""The three extraction methods: BRW, IBS, SPARQL (Algorithms 1–3)."""

import numpy as np
import pytest

from repro.core.api import extract_tosg
from repro.core.brw import BiasedRandomWalkSampler
from repro.core.ibs import InfluenceBasedSampler
from repro.core.pattern import GraphPattern
from repro.core.sparql_method import SparqlTOSGExtractor
from repro.sparql.endpoint import SparqlEndpoint


def test_brw_roots_are_targets(toy_kg, toy_task):
    sampler = BiasedRandomWalkSampler(toy_kg, walk_length=2, batch_size=4)
    sampled = sampler.sample(toy_task, np.random.default_rng(0))
    target_set = set(toy_task.target_nodes.tolist())
    assert set(sampled.root_nodes.tolist()) <= target_set
    assert len(sampled.root_nodes) == 4


def test_brw_excludes_disconnected_noise(toy_kg, toy_task):
    sampler = BiasedRandomWalkSampler(toy_kg, walk_length=3, batch_size=6)
    sampled = sampler.sample(toy_task, np.random.default_rng(0))
    classes = set(sampled.subgraph.class_vocab)
    assert "Movie" not in classes  # movies are unreachable from papers


def test_brw_requires_targets(toy_kg, toy_task):
    import dataclasses

    empty = dataclasses.replace(toy_task)
    empty.target_nodes = np.empty(0, dtype=np.int64)
    empty.labels = np.empty(0, dtype=np.int64)
    sampler = BiasedRandomWalkSampler(toy_kg)
    with pytest.raises(ValueError):
        sampler.sample(empty, np.random.default_rng(0))


def test_brw_parameter_validation(toy_kg):
    with pytest.raises(ValueError):
        BiasedRandomWalkSampler(toy_kg, walk_length=0)
    with pytest.raises(ValueError):
        BiasedRandomWalkSampler(toy_kg, batch_size=0)


def test_ibs_includes_targets_and_influencers(toy_kg, toy_task):
    sampler = InfluenceBasedSampler(toy_kg, top_k=3, batch_size=6)
    sampled = sampler.sample(toy_task, np.random.default_rng(0))
    new_names = set(sampled.subgraph.node_vocab)
    # All six papers were chosen as the partition's targets.
    for i in range(6):
        assert f"p{i}" in new_names
    assert "Movie" not in set(sampled.subgraph.class_vocab)


def test_ibs_workers_is_a_deprecated_noop(toy_kg, toy_task):
    default = InfluenceBasedSampler(toy_kg, top_k=3)
    with pytest.warns(DeprecationWarning, match="workers") as record:
        legacy = InfluenceBasedSampler(toy_kg, top_k=3, workers=4)
    # Exactly one warning per construction, not one per target/chunk.
    assert len(record) == 1
    targets = toy_task.target_nodes
    assert default.influence_pairs(targets) == legacy.influence_pairs(targets)


def test_ibs_without_workers_warns_nothing(toy_kg):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        InfluenceBasedSampler(toy_kg, top_k=3)


def test_ibs_chunking_is_invisible(toy_kg, toy_task):
    whole = InfluenceBasedSampler(toy_kg, top_k=3)
    chunked = InfluenceBasedSampler(toy_kg, top_k=3, chunk_size=2)
    targets = toy_task.target_nodes
    assert whole.influence_pairs(targets) == chunked.influence_pairs(targets)


def test_sparql_extractor_basic(toy_kg, toy_task):
    extractor = SparqlTOSGExtractor(SparqlEndpoint(toy_kg), batch_size=3, workers=2)
    subgraph, mapping, stats = extractor.extract(toy_task, GraphPattern(2, 1))
    assert stats.subqueries == 2
    assert stats.pages >= 2
    assert stats.triples_after_dedup <= stats.triples_before_dedup
    assert "Movie" not in set(subgraph.class_vocab)
    # All targets survive (they all have edges here).
    assert all(int(t) in mapping.node_old_to_new for t in toy_task.target_nodes)


def test_sparql_pagination_invariance(toy_kg, toy_task):
    """Different page sizes must produce the identical TOSG."""
    small = SparqlTOSGExtractor(SparqlEndpoint(toy_kg), batch_size=2, workers=1)
    large = SparqlTOSGExtractor(SparqlEndpoint(toy_kg), batch_size=1000, workers=3)
    sub_small, _, _ = small.extract(toy_task, GraphPattern(1, 1))
    sub_large, _, _ = large.extract(toy_task, GraphPattern(1, 1))
    triples_small = {
        (
            sub_small.node_vocab.term(s),
            sub_small.relation_vocab.term(p),
            sub_small.node_vocab.term(o),
        )
        for s, p, o in sub_small.triples
    }
    triples_large = {
        (
            sub_large.node_vocab.term(s),
            sub_large.relation_vocab.term(p),
            sub_large.node_vocab.term(o),
        )
        for s, p, o in sub_large.triples
    }
    assert triples_small == triples_large


def test_sparql_d1h1_equals_manual_expansion(toy_kg, toy_task):
    """SPARQL d1h1 == {outgoing triples of target vertices}."""
    extractor = SparqlTOSGExtractor(SparqlEndpoint(toy_kg), batch_size=100)
    subgraph, _, _ = extractor.extract(toy_task, GraphPattern(1, 1))
    expected = set()
    paper_class = toy_kg.class_vocab.id("Paper")
    for s, p, o in toy_kg.triples:
        if toy_kg.node_types[s] == paper_class:
            expected.add(
                (
                    toy_kg.node_vocab.term(s),
                    toy_kg.relation_vocab.term(p),
                    toy_kg.node_vocab.term(o),
                )
            )
    got = {
        (subgraph.node_vocab.term(s), subgraph.relation_vocab.term(p), subgraph.node_vocab.term(o))
        for s, p, o in subgraph.triples
    }
    assert got == expected


def test_extract_tosg_facade_all_methods(toy_kg, toy_task):
    for method in ("sparql", "brw", "ibs"):
        result = extract_tosg(
            toy_kg, toy_task, method=method, rng=np.random.default_rng(0),
            direction=2, hops=1, walk_length=2, top_k=3,
        )
        assert result.subgraph.num_nodes > 0
        assert result.extraction_seconds >= 0
        assert result.task.num_targets > 0
        assert result.source_kg_name == "toy"
        # Remapped labels agree with the originals through the mapping.
        for position, node in enumerate(result.task.target_nodes):
            old = int(result.mapping.node_old_ids[node])
            original_position = toy_task.target_nodes.tolist().index(old)
            assert toy_task.labels[original_position] == result.task.labels[position]


def test_extract_tosg_rejects_unknown_method(toy_kg, toy_task):
    with pytest.raises(ValueError):
        extract_tosg(toy_kg, toy_task, method="magic")


def test_extract_tosg_keeps_isolated_targets(toy_kg, toy_task):
    """SPARQL extraction keeps even edge-less targets (extra_nodes)."""
    result = extract_tosg(toy_kg, toy_task, method="sparql", direction=1, hops=1)
    assert result.task.num_targets == toy_task.num_targets


def test_reduction_ratio(toy_kg, toy_task):
    result = extract_tosg(toy_kg, toy_task, method="sparql", direction=1, hops=1)
    assert 0 < result.reduction_ratio <= 1.0
