"""CLI subcommands."""

import os

import pytest

from repro.cli import main


def test_stats_command(capsys):
    assert main(["stats", "--dataset", "mag", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "MAG-tiny" in out
    assert "#n-type" in out


def test_stats_unknown_dataset():
    with pytest.raises(SystemExit):
        main(["stats", "--dataset", "freebase"])


def test_extract_command_saves_bundle(tmp_path, capsys):
    out_dir = str(tmp_path / "kgprime")
    assert main([
        "extract", "--dataset", "mag", "--scale", "tiny", "--task", "PV",
        "--method", "sparql", "-d", "1", "-H", "1", "--out", out_dir,
    ]) == 0
    out = capsys.readouterr().out
    assert "extracted" in out and "saved TSV bundle" in out
    assert os.path.exists(os.path.join(out_dir, "nodes.tsv"))
    assert os.path.exists(os.path.join(out_dir, "triples.tsv"))


def test_extract_brw(capsys):
    assert main([
        "extract", "--dataset", "yago4", "--scale", "tiny", "--task", "CG",
        "--method", "brw", "--walk-length", "2",
    ]) == 0
    assert "BRW" in capsys.readouterr().out


def test_train_nc_on_tosa(capsys):
    assert main([
        "train", "--dataset", "mag", "--scale", "tiny", "--task", "PV",
        "--model", "SeHGNN", "--tosa", "--epochs", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "SeHGNN" in out and "KG-TOSAd1h1" in out


def test_train_lp_model_check():
    with pytest.raises(SystemExit):
        main(["train", "--dataset", "dblp", "--scale", "tiny", "--task", "AA",
              "--model", "SeHGNN"])  # SeHGNN is NC-only


def test_train_lp_runs(capsys):
    assert main([
        "train", "--dataset", "yago3_10", "--scale", "tiny", "--task", "CA",
        "--model", "MorsE", "--epochs", "3",
    ]) == 0
    assert "MorsE" in capsys.readouterr().out


def test_bench_table1(capsys):
    assert main(["bench", "--experiment", "table1", "--scale", "tiny"]) == 0
    assert "table1" in capsys.readouterr().out


def test_bench_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["bench", "--experiment", "fig99"])


def test_serve_command_binds_and_stops(capsys):
    assert main([
        "serve", "--dataset", "mag", "--scale", "tiny",
        "--port", "0", "--duration", "0.2",
    ]) == 0
    out = capsys.readouterr().out
    assert "serving MAG-tiny" in out and "coalescing" in out


def test_bench_serve_command_writes_report(tmp_path, capsys):
    out_path = str(tmp_path / "BENCH_serving.json")
    assert main([
        "bench-serve", "--dataset", "mag", "--scale", "tiny", "--task", "PV",
        "--requests", "32", "--concurrency", "8", "--out", out_path,
    ]) == 0
    out = capsys.readouterr().out
    assert "coalescing speedup" in out and "bit-identical" in out
    import json

    with open(out_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["serial"]["mode"] == "serial"
    assert payload["coalesced"]["mode"] == "coalesced"
    assert payload["speedup"] > 0
    assert "admission" in payload["metrics"]


def test_serve_http_command_binds_and_stops(capsys):
    assert main([
        "serve", "--dataset", "mag", "--scale", "tiny",
        "--protocol", "http", "--port", "0", "--duration", "0.2",
    ]) == 0
    out = capsys.readouterr().out
    assert "serving MAG-tiny" in out and "via http" in out


def test_serve_with_worker_pool_binds_and_stops(capsys):
    assert main([
        "serve", "--dataset", "mag", "--scale", "tiny",
        "--workers", "2", "--port", "0", "--duration", "0.2",
    ]) == 0
    out = capsys.readouterr().out
    assert "serving MAG-tiny" in out and "pool of 2 workers" in out


def test_serve_workers_conflict_with_no_coalesce():
    with pytest.raises(SystemExit):
        main(["serve", "--dataset", "mag", "--scale", "tiny",
              "--workers", "2", "--no-coalesce", "--port", "0",
              "--duration", "0.1"])


def test_build_artifacts_command(tmp_path, capsys):
    out_dir = str(tmp_path / "store")
    assert main([
        "build-artifacts", "--dataset", "mag", "--scale", "tiny", "--out", out_dir,
    ]) == 0
    out = capsys.readouterr().out
    assert "saved artifact store" in out and "--mmap-dir" in out
    assert os.path.exists(os.path.join(out_dir, "artifacts.tosg"))


def test_serve_mmap_command_binds_and_stops(tmp_path, capsys):
    out_dir = str(tmp_path / "store")
    assert main([
        "build-artifacts", "--dataset", "mag", "--scale", "tiny", "--out", out_dir,
    ]) == 0
    assert main([
        "serve", "--dataset", "mag", "--scale", "tiny", "--workers", "2",
        "--mmap-dir", out_dir, "--port", "0", "--duration", "0.2",
    ]) == 0
    out = capsys.readouterr().out
    assert "serving MAG-tiny" in out and "mmap artifacts" in out


def test_serve_pin_workers_banner(capsys):
    assert main([
        "serve", "--dataset", "mag", "--scale", "tiny", "--workers", "2",
        "--pin-workers", "--port", "0", "--duration", "0.2",
    ]) == 0
    assert "pinned to cpus [" in capsys.readouterr().out


def test_serve_pin_workers_requires_pool():
    with pytest.raises(SystemExit):
        main(["serve", "--dataset", "mag", "--scale", "tiny",
              "--pin-workers", "--port", "0", "--duration", "0.1"])


def test_bench_serve_mmap_requires_workers(tmp_path):
    with pytest.raises(SystemExit):
        main(["bench-serve", "--dataset", "mag", "--scale", "tiny",
              "--mmap-dir", str(tmp_path), "--requests", "4"])


def test_bench_serve_with_worker_pool(tmp_path, capsys):
    out_path = str(tmp_path / "BENCH_pool.json")
    assert main([
        "bench-serve", "--dataset", "mag", "--scale", "tiny", "--task", "PV",
        "--requests", "32", "--concurrency", "8", "--workers", "2",
        "--out", out_path,
    ]) == 0
    out = capsys.readouterr().out
    assert "pool (2 workers) speedup" in out and "bit-identical" in out
    import json

    with open(out_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["serial"]["mode"] == "serial"
    assert payload["pooled"]["mode"] == "pooled"
    assert payload["metrics"]["config"]["pool"]["workers"] == 2


def test_bench_serve_paths_mode(tmp_path, capsys):
    out_path = str(tmp_path / "BENCH_paths.json")
    assert main([
        "bench-serve", "--dataset", "mag", "--scale", "tiny", "--task", "PV",
        "--paths", "--max-hops", "2", "--max-paths", "16",
        "--requests", "32", "--concurrency", "8", "--out", out_path,
    ]) == 0
    out = capsys.readouterr().out
    assert "/paths coalescing speedup" in out and "bit-identical" in out
    import json

    with open(out_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["serial"]["mode"] == "paths-serial"
    assert payload["paths-coalesced"]["mode"] == "paths-coalesced"
    assert payload["task"] == "PV pairs"


def test_bench_serve_paths_rejects_conflicting_modes(tmp_path):
    with pytest.raises(SystemExit):
        main(["bench-serve", "--dataset", "mag", "--scale", "tiny",
              "--paths", "--checkpoint", str(tmp_path / "x.ckpt"),
              "--requests", "4"])


@pytest.mark.parametrize("doc", ["serving.md", "live-graphs.md", "paths.md"])
def test_help_text_covers_every_flag_documented_in_serving_docs(doc, capsys):
    """Every --flag mentioned in the serving/live-graph/paths docs must
    appear verbatim in `repro serve --help`, `repro serve-worker --help`,
    `repro bench-serve --help` or `repro train --help` (the docs and the
    CLI must never drift apart)."""
    import re

    docs_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "docs", doc,
    )
    with open(docs_path, encoding="utf-8") as handle:
        # Audit repro's own flags; example invocations of other tools
        # (curl, tools/check_docs.py) document *their* flags, not ours.
        lines = [
            line for line in handle
            if "curl" not in line and "check_docs" not in line
        ]
    documented = set(re.findall(r"(--[a-z][a-z0-9-]+)", "".join(lines)))
    assert documented, f"docs/{doc} no longer documents any flags?"

    help_text = ""
    for command in ("serve", "serve-worker", "bench-serve", "train"):
        with pytest.raises(SystemExit):
            main([command, "--help"])
        help_text += capsys.readouterr().out
    missing = sorted(flag for flag in documented if flag not in help_text)
    assert not missing, f"flags documented in docs/{doc} but absent from --help: {missing}"


def test_train_save_checkpoint_writes_loadable_artifact(tmp_path, capsys):
    ckpt = str(tmp_path / "pv.ckpt")
    assert main([
        "train", "--dataset", "mag", "--scale", "tiny", "--task", "PV",
        "--model", "RGCN", "--epochs", "3", "--save-checkpoint", ckpt,
    ]) == 0
    out = capsys.readouterr().out
    assert "checkpoint saved to" in out and "--checkpoint" in out

    from repro.nn.checkpoint import read_checkpoint_meta

    meta = read_checkpoint_meta(ckpt)
    assert meta["architecture"] == "RGCN"
    assert meta["task_name"] == "PV"
    assert meta["task_type"] == "NC"
    assert meta["metrics"]["test_metric"] > 0


def test_serve_checkpoint_banner(tmp_path, capsys):
    ckpt = str(tmp_path / "pv.ckpt")
    assert main([
        "train", "--dataset", "mag", "--scale", "tiny", "--task", "PV",
        "--model", "RGCN", "--epochs", "3", "--save-checkpoint", ckpt,
    ]) == 0
    assert main([
        "serve", "--dataset", "mag", "--scale", "tiny",
        "--checkpoint", ckpt, "--port", "0", "--duration", "0.2",
    ]) == 0
    out = capsys.readouterr().out
    assert "serving MAG-tiny" in out and "1 checkpoint(s)" in out


def test_bench_serve_predict_mode_writes_report(tmp_path, capsys):
    ckpt = str(tmp_path / "pv.ckpt")
    assert main([
        "train", "--dataset", "mag", "--scale", "tiny", "--task", "PV",
        "--model", "RGCN", "--epochs", "3", "--save-checkpoint", ckpt,
    ]) == 0
    out_path = str(tmp_path / "BENCH_predict.json")
    assert main([
        "bench-serve", "--dataset", "mag", "--scale", "tiny",
        "--checkpoint", ckpt, "--requests", "32", "--concurrency", "8",
        "--out", out_path,
    ]) == 0
    out = capsys.readouterr().out
    assert "/predict coalescing speedup" in out and "bit-identical" in out
    import json

    with open(out_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["task"] == "PV"
    assert payload["serial"]["mode"] == "predict-serial"
    assert payload["predict-coalesced"]["mode"] == "predict-coalesced"
    assert payload["metrics"]["predict"]["registry"]["loaded"] == 1


def test_bench_serve_checkpoint_conflicts_with_mmap(tmp_path):
    with pytest.raises(SystemExit):
        main(["bench-serve", "--dataset", "mag", "--scale", "tiny",
              "--checkpoint", str(tmp_path / "x.ckpt"),
              "--mmap-dir", str(tmp_path), "--workers", "2"])


def test_serve_http_end_to_end_over_a_real_socket():
    """`repro serve --protocol http` + a plain HTTP client (curl stand-in)."""
    import http.client
    import json
    import re
    import subprocess
    import sys
    from urllib.parse import quote

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "mag", "--scale", "tiny",
            "--protocol", "http", "--port", "0", "--duration", "30",
        ],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"on 127\.0\.0\.1:(\d+) via http", banner)
        assert match, f"unexpected banner: {banner!r}"
        port = int(match.group(1))

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        query = "select ?s ?p ?o where { ?s ?p ?o } limit 10"
        conn.request("GET", f"/sparql?query={quote(query)}&page_rows=4")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/sparql-results+json"
        payload = json.loads(response.read())
        assert payload["head"]["vars"] == ["s", "p", "o"]
        assert len(payload["results"]["bindings"]) == 10

        conn.request("GET", "/graphs")
        assert json.loads(conn.getresponse().read()) == ["mag"]
        conn.close()
    finally:
        process.terminate()
        process.wait(timeout=10)


def test_serve_worker_pool_end_to_end_over_a_real_socket():
    """`repro serve --workers 2 --protocol http`: sharded serving on the wire."""
    import http.client
    import json
    import re
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "mag", "--scale", "tiny",
            "--protocol", "http", "--workers", "2",
            "--port", "0", "--duration", "60",
        ],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"on 127\.0\.0\.1:(\d+) via http", banner)
        assert match, f"unexpected banner: {banner!r}"
        assert "pool of 2 workers" in banner
        port = int(match.group(1))

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        conn.request("GET", "/ppr?graph=mag&target=5&k=8")
        response = conn.getresponse()
        assert response.status == 200
        pairs = json.loads(response.read())
        assert len(pairs) == 8 and all(len(pair) == 2 for pair in pairs)

        conn.request("GET", "/metrics")
        metrics = json.loads(conn.getresponse().read())
        assert metrics["config"]["pool"]["workers"] == 2
        assert metrics["config"]["pool"]["alive"] == [True, True]
        assert metrics["graphs"]["mag"]["artifact_cache"]["builds"] >= 1
        conn.close()
    finally:
        process.terminate()
        process.wait(timeout=10)


def test_serve_mmap_worker_pool_end_to_end_over_a_real_socket(tmp_path):
    """`repro serve --workers 2 --mmap-dir`: zero-copy serving on the wire.

    Workers map the saved store instead of rebuilding: /metrics must show
    mapped (shared) bytes and zero CSR builds.
    """
    import http.client
    import json
    import re
    import subprocess
    import sys

    store_dir = str(tmp_path / "store")
    assert main([
        "build-artifacts", "--dataset", "mag", "--scale", "tiny", "--out", store_dir,
    ]) == 0

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "mag", "--scale", "tiny",
            "--protocol", "http", "--workers", "2",
            "--mmap-dir", store_dir,
            "--port", "0", "--duration", "60",
        ],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"on 127\.0\.0\.1:(\d+) via http", banner)
        assert match, f"unexpected banner: {banner!r}"
        assert "pool of 2 workers" in banner and "mmap artifacts" in banner
        port = int(match.group(1))

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        conn.request("GET", "/ppr?graph=mag&target=5&k=8")
        response = conn.getresponse()
        assert response.status == 200
        pairs = json.loads(response.read())
        assert len(pairs) == 8 and all(len(pair) == 2 for pair in pairs)

        conn.request("GET", "/metrics")
        metrics = json.loads(conn.getresponse().read())
        cache = metrics["graphs"]["mag"]["artifact_cache"]
        assert cache["mapped_nbytes"] > 0
        assert cache["builds"] == 0  # prebuilt projections: hits, never builds
        conn.close()
    finally:
        process.terminate()
        process.wait(timeout=10)


def test_serve_predict_end_to_end_over_a_real_socket(tmp_path):
    """train --save-checkpoint → serve --checkpoint → GET /predict on the wire.

    The same workflow the CI inference tier runs: a checkpoint trained by
    the CLI answers node-classification queries over HTTP, and /metrics
    exposes the predict cache + registry counters.
    """
    import http.client
    import json
    import re
    import subprocess
    import sys

    ckpt = str(tmp_path / "pv.ckpt")
    assert main([
        "train", "--dataset", "mag", "--scale", "tiny", "--task", "PV",
        "--model", "RGCN", "--epochs", "3", "--save-checkpoint", ckpt,
    ]) == 0

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "mag", "--scale", "tiny",
            "--protocol", "http", "--checkpoint", ckpt,
            "--port", "0", "--duration", "60",
        ],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"on 127\.0\.0\.1:(\d+) via http", banner)
        assert match, f"unexpected banner: {banner!r}"
        assert "1 checkpoint(s)" in banner
        port = int(match.group(1))

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        conn.request("GET", "/predict?graph=mag&task=PV&node=0&k=4")
        response = conn.getresponse()
        assert response.status == 200
        payload = json.loads(response.read())
        assert payload["task_type"] == "NC"
        assert payload["model"] == "RGCN"
        assert payload["node"] == 0
        assert isinstance(payload["label"], int)
        assert len(payload["scores"]) > 1

        # Same request again: answered from the result cache.
        conn.request("GET", "/predict?graph=mag&task=PV&node=0&k=4")
        assert json.loads(conn.getresponse().read()) == payload

        # Bad request: NC tasks take a node, not a head.
        conn.request("GET", "/predict?graph=mag&task=PV")
        response = conn.getresponse()
        assert response.status == 400
        response.read()

        conn.request("GET", "/metrics")
        metrics = json.loads(conn.getresponse().read())
        predict = metrics["predict"]
        assert predict["cache"]["hits"] >= 1
        assert predict["registry"]["loads"] == 1
        assert predict["registry"]["checkpoints"][0]["task"] == "PV"
        conn.close()
    finally:
        process.terminate()
        process.wait(timeout=10)
