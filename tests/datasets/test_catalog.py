"""The benchmark catalog: structural validity of every KG/task."""

import numpy as np
import pytest

from repro.datasets import catalog


def _check_nc_task(kg, task):
    assert task.num_targets > 0
    # All targets carry the declared class.
    assert (kg.node_types[task.target_nodes] == task.target_class).all()
    assert task.labels.min() >= 0
    assert task.labels.max() < task.num_labels
    train, valid, test = task.split.ratios()
    assert train > 0.5 and valid > 0 and test > 0
    combined = np.concatenate([task.split.train, task.split.valid, task.split.test])
    assert len(np.unique(combined)) == task.num_targets


def _check_lp_task(kg, task):
    assert task.num_edges > 0
    assert (kg.node_types[task.edges[:, 0]] == task.head_class).all()
    assert (kg.node_types[task.edges[:, 1]] == task.tail_class).all()
    assert len(task.split.test) >= 8  # usable eval set even at tiny scale


def test_mag_bundle(mag_tiny):
    _check_nc_task(mag_tiny.kg, mag_tiny.task("PV"))
    _check_nc_task(mag_tiny.kg, mag_tiny.task("PD"))
    assert "Paper" in mag_tiny.kg.class_vocab


def test_dblp_bundle(dblp_tiny):
    _check_nc_task(dblp_tiny.kg, dblp_tiny.task("PV"))
    _check_nc_task(dblp_tiny.kg, dblp_tiny.task("AC"))
    _check_lp_task(dblp_tiny.kg, dblp_tiny.task("AA"))


def test_yago_bundle(yago_tiny):
    _check_nc_task(yago_tiny.kg, yago_tiny.task("PC"))
    _check_nc_task(yago_tiny.kg, yago_tiny.task("CG"))


def test_yago3_bundle(yago3_tiny):
    _check_lp_task(yago3_tiny.kg, yago3_tiny.task("CA"))


def test_wikikg_bundle(wikikg_tiny):
    _check_lp_task(wikikg_tiny.kg, wikikg_tiny.task("PO"))


def test_lp_heldout_edges_not_in_graph(dblp_tiny):
    """Valid/test LP edges must be invisible to the model (no leakage)."""
    kg = dblp_tiny.kg
    task = dblp_tiny.task("AA")
    present = set()
    for s, p, o in kg.triples:
        if p == task.predicate:
            present.add((s, o))
    for position in np.concatenate([task.split.valid, task.split.test]):
        head, tail = task.edges[position]
        assert (int(head), int(tail)) not in present


def test_lp_train_edges_are_in_graph(dblp_tiny):
    kg = dblp_tiny.kg
    task = dblp_tiny.task("AA")
    present = set()
    for s, p, o in kg.triples:
        if p == task.predicate:
            present.add((s, o))
    for position in task.split.train:
        head, tail = task.edges[position]
        assert (int(head), int(tail)) in present


def test_type_richness_ordering():
    """Table I shape: wikikg2 > YAGO > MAG > DBLP > YAGO3-10 in type count."""
    kgs = catalog.benchmark_kgs("tiny", seed=7)
    counts = {name: bundle.kg.num_node_types for name, bundle in kgs.items()}
    assert counts["wikikg2"] > counts["YAGO"] > counts["MAG"] > counts["DBLP"] > counts["YAGO3-10"]


def test_scales_change_size():
    tiny = catalog.mag("tiny", seed=1).kg
    small = catalog.mag("small", seed=1).kg
    assert small.num_nodes > tiny.num_nodes


def test_numeric_scale_accepted():
    kg = catalog.mag(0.4, seed=1).kg
    assert kg.num_nodes > 0


def test_unknown_scale_rejected():
    with pytest.raises(KeyError):
        catalog.mag("galactic")


def test_unknown_task_rejected(mag_tiny):
    with pytest.raises(KeyError):
        mag_tiny.task("XX")


def test_generation_is_deterministic():
    a = catalog.mag("tiny", seed=3)
    b = catalog.mag("tiny", seed=3)
    assert a.kg.num_nodes == b.kg.num_nodes
    assert a.kg.triples == b.kg.triples
    assert (a.task("PV").labels == b.task("PV").labels).all()


def test_ogbn_mag_subset_shape(mag_tiny):
    subset = catalog.ogbn_mag_subset(mag_tiny)
    assert subset.kg.num_node_types == 4
    assert subset.kg.num_nodes < mag_tiny.kg.num_nodes
    assert subset.kg.num_edges < mag_tiny.kg.num_edges
    task = subset.task("PV")
    assert task.num_targets > 0
    assert (subset.kg.node_types[task.target_nodes] == task.target_class).all()


def test_yago_targets_are_minority(yago_tiny):
    """The YAGO stand-in is noise-dominated (Figure 2a precondition)."""
    kg = yago_tiny.kg
    cg = yago_tiny.task("CG")
    assert cg.num_targets / kg.num_nodes < 0.2
