"""KGBuilder and wiring helpers."""

import numpy as np
import pytest

from repro.datasets.generators import KGBuilder, add_noise_domains, wire_affine


def test_builder_assigns_dense_ids():
    builder = KGBuilder("test")
    ids = builder.add_nodes("n", "T", 5)
    assert ids.tolist() == [0, 1, 2, 3, 4]
    assert builder.num_nodes == 5


def test_builder_triples_and_build():
    builder = KGBuilder("test")
    a = builder.add_node("a", "T")
    b = builder.add_node("b", "T")
    builder.add_triples([a, a], "r", [b, b])  # duplicate collapses
    kg = builder.build()
    assert kg.num_edges == 1
    assert kg.name == "test"


def test_builder_length_mismatch():
    builder = KGBuilder("test")
    builder.add_nodes("n", "T", 3)
    with pytest.raises(ValueError):
        builder.add_triples([0, 1], "r", [2])


def test_wire_affine_prefers_same_community():
    rng = np.random.default_rng(0)
    builder = KGBuilder("test")
    src = builder.add_nodes("s", "S", 200)
    dst = builder.add_nodes("d", "D", 100)
    src_comm = np.arange(200) % 4
    dst_comm = np.arange(100) % 4
    wire_affine(builder, rng, src, dst, src_comm, dst_comm, "r", p_same=0.9, out_degree=2.0)
    kg = builder.build()
    same = 0
    for s, _p, o in kg.triples:
        if src_comm[s] == dst_comm[o - 200]:
            same += 1
    # ~0.9 + 0.1/4 ≈ 92.5% same-community edges expected.
    assert same / kg.num_edges > 0.75


def test_wire_affine_empty_inputs_noop():
    builder = KGBuilder("test")
    wire_affine(builder, np.random.default_rng(0), np.asarray([]), np.asarray([]),
                np.asarray([]), np.asarray([]), "r")
    assert builder.build().num_edges == 0


def test_noise_domains_disconnected_by_default():
    rng = np.random.default_rng(0)
    builder = KGBuilder("test")
    core = builder.add_nodes("core", "Core", 10)
    builder.add_triples(core[:-1], "link", core[1:])
    domains = add_noise_domains(builder, rng, num_domains=3, nodes_per_domain=5)
    kg = builder.build()
    core_set = set(core.tolist())
    for domain in domains:
        for s, _p, o in kg.triples:
            if s in domain.tolist():
                assert o not in core_set


def test_noise_domains_attached_when_requested():
    rng = np.random.default_rng(0)
    builder = KGBuilder("test")
    core = builder.add_nodes("core", "Core", 10)
    add_noise_domains(builder, rng, num_domains=2, nodes_per_domain=30,
                      attach_ids=core, attach_probability=0.5)
    kg = builder.build()
    core_set = set(core.tolist())
    attached = any(o in core_set for _s, _p, o in kg.triples)
    assert attached


def test_noise_domains_have_distinct_types():
    rng = np.random.default_rng(0)
    builder = KGBuilder("test")
    add_noise_domains(builder, rng, num_domains=4, nodes_per_domain=3, prefix="X")
    kg = builder.build()
    assert kg.num_node_types == 4
