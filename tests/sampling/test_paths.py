"""Path enumeration: batched frontier kernel vs the scalar DFS oracle.

`enumerate_paths_batch` advances every (src, dst) pair in lock-step over
the hexastore's subject runs; the scalar iterative-deepening DFS
(`enumerate_paths_scalar`) is the retained reference.  Equivalence is
*bit-for-bit*: same paths, same hop-major lexicographic order, same
`max_paths` truncation — across random graphs, parameter grids, and the
self-loop / parallel-edge / disconnected / empty-result edge cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kg.graph import KnowledgeGraph
from repro.sampling.paths import (
    enumerate_paths_batch,
    enumerate_paths_batch_with_support,
    enumerate_paths_scalar,
)


def _random_kg(num_nodes, num_relations, num_triples, seed):
    rng = np.random.default_rng(seed)
    nodes = [(f"n{i}", "T") for i in range(num_nodes)]
    triples = list(
        {
            (
                f"n{int(rng.integers(num_nodes))}",
                f"r{int(rng.integers(num_relations))}",
                f"n{int(rng.integers(num_nodes))}",
            )
            for _ in range(num_triples)
        }
    )
    return KnowledgeGraph.build(nodes, triples, name="rand")


def _assert_batch_matches_oracle(kg, pairs, max_hops, max_paths):
    batch = enumerate_paths_batch(kg, pairs, max_hops=max_hops, max_paths=max_paths)
    assert len(batch) == len(pairs)
    for (src, dst), paths in zip(pairs, batch):
        oracle = enumerate_paths_scalar(
            kg, int(src), int(dst), max_hops=max_hops, max_paths=max_paths
        )
        assert paths == oracle


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=1, max_value=4),
    st.sampled_from([1, 3, 16, 64]),
)
def test_batch_matches_scalar_oracle_property(num_nodes, seed, max_hops, max_paths):
    kg = _random_kg(num_nodes, 3, num_nodes * 3, seed)
    rng = np.random.default_rng(seed + 1)
    pairs = rng.integers(0, num_nodes, size=(8, 2))
    _assert_batch_matches_oracle(kg, pairs, max_hops, max_paths)


@pytest.mark.slow
@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=32),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=128),
    st.integers(min_value=1, max_value=5),
)
def test_batch_matches_scalar_oracle_heavy_grid(
    num_nodes, seed, max_hops, max_paths, num_relations
):
    kg = _random_kg(num_nodes, num_relations, num_nodes * 4, seed)
    rng = np.random.default_rng(seed + 1)
    pairs = rng.integers(0, num_nodes, size=(12, 2))
    _assert_batch_matches_oracle(kg, pairs, max_hops, max_paths)


def test_path_structure_and_order():
    # a -r0-> b -r1-> d, a -r1-> c -r0-> d, a -r2-> d.
    kg = KnowledgeGraph.build(
        [("a", "T"), ("b", "T"), ("c", "T"), ("d", "T")],
        [
            ("a", "r0", "b"),
            ("b", "r1", "d"),
            ("a", "r1", "c"),
            ("c", "r0", "d"),
            ("a", "r2", "d"),
        ],
    )
    node = kg.node_vocab.id
    rel = kg.relation_vocab.id
    a, b, c, d = node("a"), node("b"), node("c"), node("d")
    paths = enumerate_paths_scalar(kg, a, d, max_hops=2, max_paths=10)
    # Hop-major: the direct edge first, then both 2-hop paths in
    # (relation, node) lexicographic order.
    assert paths == [
        [a, rel("r2"), d],
        [a, rel("r0"), b, rel("r1"), d],
        [a, rel("r1"), c, rel("r0"), d],
    ]
    assert enumerate_paths_batch(kg, [(a, d)], max_hops=2, max_paths=10) == [paths]
    # Truncation keeps the hop-major prefix.
    assert enumerate_paths_scalar(kg, a, d, max_hops=2, max_paths=2) == paths[:2]
    assert enumerate_paths_batch(kg, [(a, d)], max_hops=2, max_paths=2) == [paths[:2]]


def test_disconnected_pair_is_empty():
    kg = KnowledgeGraph.build(
        [("a", "T"), ("b", "T"), ("x", "T"), ("y", "T")],
        [("a", "r", "b"), ("x", "r", "y")],
    )
    a, y = kg.node_vocab.id("a"), kg.node_vocab.id("y")
    assert enumerate_paths_scalar(kg, a, y, max_hops=4) == []
    assert enumerate_paths_batch(kg, [(a, y), (y, a)], max_hops=4) == [[], []]


def test_self_loop_only_reachable_when_src_equals_dst():
    kg = KnowledgeGraph.build(
        [("a", "T"), ("b", "T")],
        [("a", "loop", "a"), ("a", "r", "b")],
    )
    a, b = kg.node_vocab.id("a"), kg.node_vocab.id("b")
    loop, r = kg.relation_vocab.id("loop"), kg.relation_vocab.id("r")
    # The loop closes src == dst in one hop; it never appears inside a
    # simple a -> b path.
    assert enumerate_paths_scalar(kg, a, a, max_hops=3) == [[a, loop, a]]
    assert enumerate_paths_scalar(kg, a, b, max_hops=3) == [[a, r, b]]
    assert enumerate_paths_batch(kg, [(a, a), (a, b)], max_hops=3) == [
        [[a, loop, a]],
        [[a, r, b]],
    ]


def test_multi_relation_parallel_edges_enumerate_separately():
    kg = KnowledgeGraph.build(
        [("a", "T"), ("b", "T")],
        [("a", "r1", "b"), ("a", "r0", "b")],
    )
    a, b = kg.node_vocab.id("a"), kg.node_vocab.id("b")
    r0, r1 = kg.relation_vocab.id("r0"), kg.relation_vocab.id("r1")
    paths = enumerate_paths_scalar(kg, a, b, max_hops=1)
    assert sorted(paths) == sorted([[a, r0, b], [a, r1, b]])
    # Relation order within the hop follows the hexastore's (p, o) run.
    assert paths == sorted(paths, key=lambda p: (p[1], p[2]))
    assert enumerate_paths_batch(kg, [(a, b)], max_hops=1) == [paths]


def test_destination_terminates_a_path():
    # a -> d -> b -> d: no path may pass *through* d, so only the 1-hop
    # path exists even with a generous hop budget.
    kg = KnowledgeGraph.build(
        [("a", "T"), ("b", "T"), ("d", "T")],
        [("a", "r", "d"), ("d", "r", "b"), ("b", "r", "d")],
    )
    node = kg.node_vocab.id
    a, d = node("a"), node("d")
    r = kg.relation_vocab.id("r")
    assert enumerate_paths_scalar(kg, a, d, max_hops=4) == [[a, r, d]]
    assert enumerate_paths_batch(kg, [(a, d)], max_hops=4) == [[[a, r, d]]]


def test_duplicate_and_empty_pair_batches():
    kg = _random_kg(10, 2, 30, seed=5)
    pairs = [(1, 4), (1, 4), (3, 3)]
    batch = enumerate_paths_batch(kg, pairs, max_hops=3, max_paths=8)
    assert batch[0] == batch[1]
    assert enumerate_paths_batch(kg, np.empty((0, 2), dtype=np.int64)) == []
    assert enumerate_paths_batch(kg, []) == []


def test_parameter_validation():
    kg = _random_kg(5, 2, 10, seed=1)
    for bad in (0, -1):
        with pytest.raises(ValueError):
            enumerate_paths_scalar(kg, 0, 1, max_hops=bad)
        with pytest.raises(ValueError):
            enumerate_paths_scalar(kg, 0, 1, max_paths=bad)
        with pytest.raises(ValueError):
            enumerate_paths_batch(kg, [(0, 1)], max_hops=bad)
        with pytest.raises(ValueError):
            enumerate_paths_batch(kg, [(0, 1)], max_paths=bad)
    with pytest.raises(ValueError):
        enumerate_paths_batch(kg, [(0, 1, 2)])


def test_with_support_paths_identical_and_support_covers_path_nodes():
    kg = _random_kg(14, 3, 50, seed=9)
    rng = np.random.default_rng(3)
    pairs = rng.integers(0, 14, size=(10, 2))
    plain = enumerate_paths_batch(kg, pairs, max_hops=3, max_paths=16)
    with_support = enumerate_paths_batch_with_support(
        kg, pairs, max_hops=3, max_paths=16
    )
    assert [paths for paths, _ in with_support] == plain
    for (src, dst), (paths, support) in zip(pairs, with_support):
        support_set = set(support.tolist())
        assert {int(src), int(dst)} <= support_set
        for path in paths:
            assert set(path[0::2]) <= support_set
        # Support is sorted and unique per pair.
        assert support.tolist() == sorted(support_set)
