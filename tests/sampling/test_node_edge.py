"""GraphSAINT node/edge samplers."""

import numpy as np
import pytest

from repro.kg.graph import KnowledgeGraph
from repro.sampling.node_edge import EdgeSampler, NodeSampler


def test_node_sampler_size_and_validity(toy_kg):
    sampler = NodeSampler(toy_kg, num_nodes=6)
    sampled = sampler.sample(np.random.default_rng(0))
    assert sampled.num_nodes == 6
    assert sampled.sampler == "NodeSampler"


def test_node_sampler_prefers_high_degree(toy_kg):
    sampler = NodeSampler(toy_kg, num_nodes=4)
    hits = np.zeros(toy_kg.num_nodes)
    for seed in range(200):
        sampled = sampler.sample(np.random.default_rng(seed))
        hits[sampled.root_nodes] += 1
    p0 = toy_kg.node_vocab.id("p0")  # degree 3
    m0 = toy_kg.node_vocab.id("m0")  # degree 1
    assert hits[p0] > hits[m0]


def test_node_sampler_capped(toy_kg):
    sampler = NodeSampler(toy_kg, num_nodes=10_000)
    assert sampler.num_nodes == toy_kg.num_nodes


def test_node_sampler_validation(toy_kg):
    with pytest.raises(ValueError):
        NodeSampler(toy_kg, num_nodes=0)


def test_edge_sampler_endpoints_present(toy_kg):
    sampler = EdgeSampler(toy_kg, num_edges=5)
    sampled = sampler.sample(np.random.default_rng(1))
    # Every sampled-subgraph edge exists in the source.
    source = {
        (toy_kg.node_vocab.term(s), toy_kg.relation_vocab.term(p), toy_kg.node_vocab.term(o))
        for s, p, o in toy_kg.triples
    }
    assert sampled.subgraph.num_edges >= 5  # induced closure adds edges
    for s, p, o in sampled.subgraph.triples:
        term = (
            sampled.subgraph.node_vocab.term(s),
            sampled.subgraph.relation_vocab.term(p),
            sampled.subgraph.node_vocab.term(o),
        )
        assert term in source


def test_edge_sampler_rejects_empty_graph():
    kg = KnowledgeGraph.build([("a", "T")], [])
    with pytest.raises(ValueError):
        EdgeSampler(kg)


def test_edge_sampler_validation(toy_kg):
    with pytest.raises(ValueError):
        EdgeSampler(toy_kg, num_edges=0)


def test_samplers_plug_into_graphsaint(toy_kg, toy_task):
    from repro.models import GraphSAINTClassifier, ModelConfig

    sampler = NodeSampler(toy_kg, num_nodes=10)
    model = GraphSAINTClassifier(
        toy_kg, toy_task, ModelConfig(hidden_dim=8, num_layers=1),
        node_sampler=lambda rng: sampler.sample(rng).mapping.node_old_ids,
    )
    assert np.isfinite(model.train_epoch(np.random.default_rng(0)))
