"""Approximate PPR: mass conservation, locality, determinism."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.sampling.ppr import approximate_ppr, ppr_top_k


def _chain(n):
    rows = list(range(n - 1)) + list(range(1, n))
    cols = list(range(1, n)) + list(range(n - 1))
    return sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))


def test_scores_sum_at_most_one():
    adjacency = _chain(10)
    scores = approximate_ppr(adjacency, [0], alpha=0.25, eps=1e-5)
    assert 0 < sum(scores.values()) <= 1.0 + 1e-9


def test_seed_has_highest_score():
    adjacency = _chain(10)
    scores = approximate_ppr(adjacency, [4], alpha=0.25, eps=1e-5)
    assert max(scores, key=scores.get) == 4


def test_locality_decay_along_chain():
    adjacency = _chain(12)
    scores = approximate_ppr(adjacency, [0], alpha=0.25, eps=1e-7)
    assert scores.get(1, 0) > scores.get(5, 0) >= scores.get(10, 0)


def test_disconnected_component_untouched():
    # Two disjoint chains; seeding in one leaves the other at zero.
    a = _chain(4)
    adjacency = sp.block_diag([a, a]).tocsr()
    scores = approximate_ppr(adjacency, [0], alpha=0.2, eps=1e-6)
    assert all(node < 4 for node in scores)


def test_empty_seed_list():
    assert approximate_ppr(_chain(4), []) == {}


def test_dangling_node_keeps_mass():
    adjacency = sp.csr_matrix((3, 3))
    scores = approximate_ppr(adjacency, [1], alpha=0.3, eps=1e-6)
    assert scores == pytest.approx({1: 1.0})


def test_invalid_parameters():
    with pytest.raises(ValueError):
        approximate_ppr(_chain(4), [0], alpha=0.0)
    with pytest.raises(ValueError):
        approximate_ppr(_chain(4), [0], eps=0.0)


def test_top_k_excludes_target_and_is_deterministic():
    adjacency = _chain(10)
    first = ppr_top_k(adjacency, 3, k=4, eps=1e-6)
    second = ppr_top_k(adjacency, 3, k=4, eps=1e-6)
    assert first == second
    assert all(node != 3 for node, _ in first)
    assert len(first) == 4
    # Scores are sorted descending.
    scores = [score for _, score in first]
    assert scores == sorted(scores, reverse=True)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=10))
def test_smaller_eps_never_loses_mass_property(n, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.3).astype(float)
    np.fill_diagonal(dense, 0)
    adjacency = sp.csr_matrix(dense + dense.T)
    coarse = approximate_ppr(adjacency, [0], alpha=0.25, eps=1e-2)
    fine = approximate_ppr(adjacency, [0], alpha=0.25, eps=1e-5)
    assert sum(fine.values()) >= sum(coarse.values()) - 1e-9
    assert sum(fine.values()) <= 1.0 + 1e-9
