"""Batch PPR kernel: exact equivalence with the scalar push oracle.

The batch kernel replays the scalar FIFO push schedule per target, so the
equivalence here is *exact* (we still assert with a 1e-9 band to stay
robust to harmless float churn): same touched sets, same top-k selections,
same scores — across random graphs, dangling nodes, isolated targets and
arbitrary chunk splits.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.sampling.ppr import (
    approximate_ppr,
    batch_approximate_ppr,
    batch_ppr_top_k,
    ppr_top_k,
)


def _random_graph(n, density, seed, with_dangling=False):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density).astype(float)
    np.fill_diagonal(dense, 0)
    dense = dense + dense.T
    if with_dangling and n > 2:
        # Cut a couple of nodes loose entirely.
        loose = rng.choice(n, size=max(n // 4, 1), replace=False)
        dense[loose, :] = 0.0
        dense[:, loose] = 0.0
    adjacency = sp.csr_matrix(dense)
    adjacency.data[:] = 1.0
    return adjacency


def _assert_matches_oracle(adjacency, targets, k, alpha, eps, chunk_size=None):
    batch = batch_ppr_top_k(
        adjacency, targets, k, alpha=alpha, eps=eps, chunk_size=chunk_size
    )
    maps = batch_approximate_ppr(
        adjacency, targets, alpha=alpha, eps=eps, chunk_size=chunk_size
    )
    assert set(batch) == {int(t) for t in targets}
    for target in targets:
        target = int(target)
        oracle_ranked = ppr_top_k(adjacency, target, k, alpha=alpha, eps=eps)
        got = batch[target]
        assert [node for node, _ in got] == [node for node, _ in oracle_ranked]
        for (_, got_score), (_, oracle_score) in zip(got, oracle_ranked):
            assert got_score == pytest.approx(oracle_score, abs=1e-9)
        oracle_map = approximate_ppr(adjacency, [target], alpha=alpha, eps=eps)
        assert set(maps[target]) == set(oracle_map)
        for node, score in oracle_map.items():
            assert maps[target][node] == pytest.approx(score, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=0, max_value=1000),
    st.sampled_from([2e-4, 1e-3, 5e-3]),
    st.sampled_from([0.1, 0.25, 0.6]),
    st.booleans(),
)
def test_batch_matches_scalar_oracle_property(n, seed, eps, alpha, with_dangling):
    adjacency = _random_graph(n, 0.2, seed, with_dangling=with_dangling)
    rng = np.random.default_rng(seed + 1)
    targets = rng.choice(n, size=min(n, 8), replace=False)
    _assert_matches_oracle(adjacency, targets, k=5, alpha=alpha, eps=eps)


def test_chunking_does_not_change_results():
    adjacency = _random_graph(30, 0.2, seed=3)
    targets = np.arange(30)
    whole = batch_ppr_top_k(adjacency, targets, 6, eps=1e-3)
    for chunk_size in (1, 3, 7, 30, 100):
        assert batch_ppr_top_k(adjacency, targets, 6, eps=1e-3, chunk_size=chunk_size) == whole


def test_isolated_targets_have_empty_top_k_and_unit_self_mass():
    adjacency = sp.csr_matrix((6, 6))
    result = batch_ppr_top_k(adjacency, [0, 4], 3)
    assert result == {0: [], 4: []}
    maps = batch_approximate_ppr(adjacency, [2], alpha=0.3)
    assert maps[2] == pytest.approx({2: 1.0})


def test_dangling_nodes_inside_connected_graph():
    # 0-1-2 chain plus isolated 3; seed every node.
    rows = [0, 1, 1, 2]
    cols = [1, 0, 2, 1]
    adjacency = sp.csr_matrix((np.ones(4), (rows, cols)), shape=(4, 4))
    _assert_matches_oracle(adjacency, [0, 1, 2, 3], k=3, alpha=0.25, eps=1e-4)


def test_duplicate_targets_are_tolerated():
    adjacency = _random_graph(12, 0.3, seed=9)
    result = batch_ppr_top_k(adjacency, [4, 4, 7], 3, eps=1e-3)
    assert set(result) == {4, 7}
    assert result[4] == batch_ppr_top_k(adjacency, [4], 3, eps=1e-3)[4]


def test_empty_target_list():
    assert batch_ppr_top_k(_random_graph(5, 0.4, seed=1), [], 3) == {}
    assert batch_approximate_ppr(_random_graph(5, 0.4, seed=1), []) == {}


def test_parameter_validation():
    adjacency = _random_graph(5, 0.4, seed=2)
    with pytest.raises(ValueError):
        batch_ppr_top_k(adjacency, [0], 3, alpha=0.0)
    with pytest.raises(ValueError):
        batch_ppr_top_k(adjacency, [0], 3, eps=0.0)
    with pytest.raises(ValueError):
        batch_ppr_top_k(adjacency, [0], 0)
    with pytest.raises(ValueError):
        batch_approximate_ppr(adjacency, [0], alpha=1.5)
    with pytest.raises(ValueError):
        batch_approximate_ppr(adjacency, [0], eps=-1.0)


def test_sparse_fallback_beyond_dense_node_limit(monkeypatch):
    # Past DENSE_NODE_LIMIT the entry points switch to the sparse-frontier
    # kernel (see test_ppr_sparse.py); results must be identical.
    import repro.sampling.ppr as ppr_module

    adjacency = _random_graph(25, 0.2, seed=11)
    targets = np.arange(0, 25, 3)
    dense = batch_ppr_top_k(adjacency, targets, 4, eps=1e-3)
    dense_maps = batch_approximate_ppr(adjacency, targets, eps=1e-3)
    monkeypatch.setattr(ppr_module, "DENSE_NODE_LIMIT", 10)
    assert batch_ppr_top_k(adjacency, targets, 4, eps=1e-3) == dense
    assert batch_approximate_ppr(adjacency, targets, eps=1e-3) == dense_maps


def test_scores_sorted_descending_with_id_tiebreak():
    adjacency = _random_graph(20, 0.25, seed=5)
    for ranked in batch_ppr_top_k(adjacency, np.arange(20), 8, eps=1e-3).values():
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        for (node_a, score_a), (node_b, score_b) in zip(ranked, ranked[1:]):
            if score_a == score_b:
                assert node_a < node_b
