"""Random-walk engine: step validity and dead-end handling."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kg.graph import KnowledgeGraph
from repro.sampling.walks import RandomWalkEngine


def test_walk_steps_follow_edges(toy_kg):
    engine = RandomWalkEngine(toy_kg, direction="both")
    roots = np.asarray([toy_kg.node_vocab.id("p0")])
    paths = engine.walk(roots, length=4, rng=np.random.default_rng(0), return_paths=True)
    edges = set()
    for s, _p, o in toy_kg.triples:
        edges.add((s, o))
        edges.add((o, s))
    for i in range(paths.shape[1] - 1):
        u, v = int(paths[0, i]), int(paths[0, i + 1])
        assert u == v or (u, v) in edges


def test_dead_end_walker_stays(toy_kg):
    # Build a graph with an isolated node and walk from it.
    kg = KnowledgeGraph.build([("x", "T"), ("y", "T")], [("x", "r", "y")])
    engine = RandomWalkEngine(kg, direction="out")
    roots = np.asarray([kg.node_vocab.id("y")])  # y has no out-edges
    paths = engine.walk(roots, length=3, rng=np.random.default_rng(0), return_paths=True)
    assert (paths == kg.node_vocab.id("y")).all()


def test_visited_includes_roots(toy_kg):
    engine = RandomWalkEngine(toy_kg)
    roots = np.asarray([0, 5])
    visited = engine.walk(roots, length=2, rng=np.random.default_rng(1))
    assert set(roots.tolist()) <= set(visited.tolist())


def test_roots_must_be_1d(toy_kg):
    engine = RandomWalkEngine(toy_kg)
    try:
        engine.walk(np.zeros((2, 2), dtype=np.int64), 1, np.random.default_rng(0))
        raised = False
    except ValueError:
        raised = True
    assert raised


def test_neighbors_accessor(toy_kg):
    engine = RandomWalkEngine(toy_kg, direction="both")
    p0 = toy_kg.node_vocab.id("p0")
    assert set(engine.neighbors(p0).tolist()) == set(toy_kg.neighbors(p0).tolist())


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=999))
def test_walk_visits_are_reachable_property(length, seed):
    """All visited nodes lie within `length` undirected hops of a root."""
    import networkx as nx
    from repro.kg.graph import KnowledgeGraph as KG

    nodes = [(f"n{i}", "T") for i in range(8)]
    triples = [("n0", "r", "n1"), ("n1", "r", "n2"), ("n2", "r", "n3"),
               ("n4", "r", "n5"), ("n5", "r", "n6")]
    kg = KG.build(nodes, triples)
    engine = RandomWalkEngine(kg, direction="both")
    roots = np.asarray([0])
    visited = engine.walk(roots, length, np.random.default_rng(seed))
    graph = nx.Graph()
    graph.add_nodes_from(range(kg.num_nodes))
    for s, _p, o in kg.triples:
        graph.add_edge(s, o)
    for node in visited:
        assert nx.shortest_path_length(graph, 0, int(node)) <= length
