"""URW sampler: GraphSAINT's default, with its known pathologies."""

import numpy as np
import pytest

from repro.sampling.urw import UniformRandomWalkSampler


def test_sample_returns_valid_subgraph(toy_kg):
    sampler = UniformRandomWalkSampler(toy_kg, walk_length=2, num_roots=5)
    sampled = sampler.sample(np.random.default_rng(0))
    assert 0 < sampled.num_nodes <= toy_kg.num_nodes
    assert sampled.sampler == "URW"
    # Every subgraph edge must exist in the original graph.
    original = {
        (toy_kg.node_vocab.term(s), toy_kg.relation_vocab.term(p), toy_kg.node_vocab.term(o))
        for s, p, o in toy_kg.triples
    }
    for s, p, o in sampled.subgraph.triples:
        term = (
            sampled.subgraph.node_vocab.term(s),
            sampled.subgraph.relation_vocab.term(p),
            sampled.subgraph.node_vocab.term(o),
        )
        assert term in original


def test_num_roots_capped_at_graph_size(toy_kg):
    sampler = UniformRandomWalkSampler(toy_kg, walk_length=1, num_roots=10_000)
    sampled = sampler.sample(np.random.default_rng(0))
    assert sampled.num_nodes <= toy_kg.num_nodes


def test_invalid_parameters(toy_kg):
    with pytest.raises(ValueError):
        UniformRandomWalkSampler(toy_kg, walk_length=0)
    with pytest.raises(ValueError):
        UniformRandomWalkSampler(toy_kg, num_roots=0)


def test_urw_ignores_types_can_sample_noise(yago_tiny):
    """URW roots are type-blind: noise-domain nodes appear in samples.

    This is the Figure 2 pathology the paper's samplers fix.
    """
    kg = yago_tiny.kg
    sampler = UniformRandomWalkSampler(kg, walk_length=2, num_roots=40)
    sampled = sampler.sample(np.random.default_rng(3))
    classes = {sampled.subgraph.class_vocab.term(int(c)) for c in sampled.subgraph.node_types}
    assert any("Noise" in c or "Island" in c for c in classes)
