"""Sparse-frontier batch PPR kernel: exact equivalence with the oracles.

The sparse kernel replays the same lock-step FIFO push schedule as the
dense kernel — which itself replays the scalar oracle per target — with all
``(target, node)`` state in hash-allocated slots.  Equivalence is therefore
*exact*: same touched sets, same top-k selections, same scores, across
random graphs, dangling nodes, isolated targets, chunk splits and the slot
map's growth/rehash paths.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.sampling.ppr import (
    _SlotMap,
    approximate_ppr,
    batch_approximate_ppr,
    batch_ppr_top_k,
)


def _random_graph(n, density, seed, with_dangling=False):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density).astype(float)
    np.fill_diagonal(dense, 0)
    dense = dense + dense.T
    if with_dangling and n > 2:
        loose = rng.choice(n, size=max(n // 4, 1), replace=False)
        dense[loose, :] = 0.0
        dense[:, loose] = 0.0
    adjacency = sp.csr_matrix(dense)
    adjacency.data[:] = 1.0
    return adjacency


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=0, max_value=1000),
    st.sampled_from([2e-4, 1e-3, 5e-3]),
    st.sampled_from([0.1, 0.25, 0.6]),
    st.booleans(),
)
def test_sparse_matches_scalar_oracle_property(n, seed, eps, alpha, with_dangling):
    adjacency = _random_graph(n, 0.2, seed, with_dangling=with_dangling)
    rng = np.random.default_rng(seed + 1)
    targets = rng.choice(n, size=min(n, 8), replace=False)
    got = batch_approximate_ppr(adjacency, targets, alpha=alpha, eps=eps, kernel="sparse")
    for target in targets:
        oracle = approximate_ppr(adjacency, [int(target)], alpha=alpha, eps=eps)
        assert set(got[int(target)]) == set(oracle)
        for node, score in oracle.items():
            assert got[int(target)][node] == score  # bit-exact, not approx


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=500))
def test_sparse_matches_dense_kernel_property(seed):
    adjacency = _random_graph(35, 0.2, seed)
    targets = np.random.default_rng(seed).choice(35, size=10, replace=False)
    dense = batch_ppr_top_k(adjacency, targets, 6, eps=1e-3, kernel="dense")
    sparse = batch_ppr_top_k(adjacency, targets, 6, eps=1e-3, kernel="sparse")
    assert dense == sparse


def test_sparse_chunking_does_not_change_results():
    adjacency = _random_graph(30, 0.2, seed=3)
    targets = np.arange(30)
    whole = batch_ppr_top_k(adjacency, targets, 6, eps=1e-3, kernel="sparse")
    for chunk_size in (1, 3, 7, 30, 100):
        chunked = batch_ppr_top_k(
            adjacency, targets, 6, eps=1e-3, kernel="sparse", chunk_size=chunk_size
        )
        assert chunked == whole


def test_sparse_isolated_and_dangling_nodes():
    adjacency = sp.csr_matrix((6, 6))
    assert batch_ppr_top_k(adjacency, [0, 4], 3, kernel="sparse") == {0: [], 4: []}
    maps = batch_approximate_ppr(adjacency, [2], alpha=0.3, kernel="sparse")
    assert maps[2] == pytest.approx({2: 1.0})
    # 0-1-2 chain plus isolated 3.
    rows, cols = [0, 1, 1, 2], [1, 0, 2, 1]
    chain = sp.csr_matrix((np.ones(4), (rows, cols)), shape=(4, 4))
    for target in range(4):
        oracle = approximate_ppr(chain, [target], eps=1e-4)
        got = batch_approximate_ppr(chain, [target], eps=1e-4, kernel="sparse")[target]
        assert got == oracle


def test_sparse_duplicate_and_empty_targets():
    adjacency = _random_graph(12, 0.3, seed=9)
    result = batch_ppr_top_k(adjacency, [4, 4, 7], 3, eps=1e-3, kernel="sparse")
    assert set(result) == {4, 7}
    assert batch_ppr_top_k(adjacency, [], 3, kernel="sparse") == {}
    assert batch_approximate_ppr(adjacency, [], kernel="sparse") == {}


def test_auto_kernel_selection_past_dense_node_limit(monkeypatch):
    import repro.sampling.ppr as ppr_module

    adjacency = _random_graph(25, 0.2, seed=11)
    targets = np.arange(0, 25, 3)
    dense = batch_ppr_top_k(adjacency, targets, 4, eps=1e-3)
    calls = []
    original = ppr_module._batch_push_sparse

    def spy(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(ppr_module, "_batch_push_sparse", spy)
    monkeypatch.setattr(ppr_module, "DENSE_NODE_LIMIT", 10)
    assert batch_ppr_top_k(adjacency, targets, 4, eps=1e-3) == dense
    assert calls, "auto selection must route to the sparse kernel past the limit"


def test_invalid_kernel_name_rejected():
    adjacency = _random_graph(5, 0.4, seed=2)
    with pytest.raises(ValueError):
        batch_ppr_top_k(adjacency, [0], 3, kernel="scalar")


def test_slot_map_growth_and_rehash():
    slot_map = _SlotMap(capacity=1 << 4)
    rng = np.random.default_rng(5)
    keys = rng.choice(10_000_000, size=5000, replace=False).astype(np.int64)
    first = slot_map.get_or_insert(keys[:2000])
    assert np.array_equal(np.sort(first), np.arange(2000))  # dense slot ids
    second = slot_map.get_or_insert(keys[2000:])
    # Lookups after multiple rehashes still resolve to the original slots.
    again = slot_map.get_or_insert(keys[:2000])
    assert np.array_equal(again, first)
    assert np.array_equal(slot_map.get_or_insert(keys[2000:]), second)
    assert slot_map.size == 5000
