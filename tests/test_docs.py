"""Docs guard, in-suite: links resolve, architecture examples run.

The CI ``docs`` job runs ``tools/check_docs.py`` and
``python -m doctest docs/architecture.md``; these tests run the same
checks inside the fast tier so a dangling link or a rotted doc example
fails locally before CI sees it.
"""

import doctest
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_docs  # noqa: E402 - needs the tools/ path above


def test_required_docs_exist():
    for relative in (
        "README.md",
        os.path.join("docs", "architecture.md"),
        os.path.join("docs", "serving.md"),
        os.path.join("docs", "performance.md"),
        os.path.join("docs", "ci.md"),
        os.path.join("docs", "live-graphs.md"),
    ):
        assert os.path.exists(os.path.join(REPO_ROOT, relative)), relative


def test_every_relative_link_resolves():
    assert check_docs.check_links() == []


def test_architecture_doc_examples_run():
    result = doctest.testfile(
        os.path.join(REPO_ROOT, "docs", "architecture.md"),
        module_relative=False,
        verbose=False,
    )
    assert result.attempted > 0, "architecture.md lost its doctest examples"
    assert result.failed == 0


def test_live_graphs_doc_examples_run():
    result = doctest.testfile(
        os.path.join(REPO_ROOT, "docs", "live-graphs.md"),
        module_relative=False,
        verbose=False,
    )
    assert result.attempted > 0, "live-graphs.md lost its doctest examples"
    assert result.failed == 0


def test_every_guarded_perf_floor_is_documented():
    assert check_docs.check_perf_floor_docs() == []


def test_every_serving_op_is_documented_both_directions():
    """The op tables in serving.md / live-graphs.md match serve.wire.OPS."""
    assert check_docs.check_serving_ops() == []


def test_serving_doc_documents_the_pool_operator_surface():
    """docs/serving.md must keep the worker-pool operator section alive."""
    with open(os.path.join(REPO_ROOT, "docs", "serving.md"), encoding="utf-8") as handle:
        text = handle.read()
    for needle in ("--workers", "--replicas", "Retry-After", "/metrics", "respawn"):
        assert needle in text, f"docs/serving.md no longer documents {needle!r}"
