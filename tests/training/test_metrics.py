"""Ranking metrics."""

import numpy as np
import pytest

from repro.training.metrics import hits_at_k, mean_reciprocal_rank, rank_of_true


def test_rank_of_true_pessimistic_ties():
    # Two negatives equal the true score: rank counts them as better.
    assert rank_of_true(1.0, np.asarray([1.0, 1.0, 0.5])) == 3
    assert rank_of_true(2.0, np.asarray([1.0, 1.5])) == 1
    assert rank_of_true(0.0, np.asarray([1.0, 2.0])) == 3


def test_rank_empty_negatives():
    assert rank_of_true(5.0, np.asarray([])) == 1


def test_hits_at_k():
    ranks = np.asarray([1, 5, 11, 10, 2])
    assert hits_at_k(ranks, 10) == pytest.approx(4 / 5)
    assert hits_at_k(ranks, 1) == pytest.approx(1 / 5)
    assert hits_at_k(np.asarray([]), 10) == 0.0


def test_mrr():
    assert mean_reciprocal_rank(np.asarray([1, 2, 4])) == pytest.approx((1 + 0.5 + 0.25) / 3)
    assert mean_reciprocal_rank(np.asarray([])) == 0.0


def test_constant_scorer_gets_no_credit():
    """A scorer assigning equal scores everywhere must rank last."""
    negatives = np.full(20, 0.5)
    assert rank_of_true(0.5, negatives) == 21
    assert hits_at_k(np.asarray([21]), 10) == 0.0
