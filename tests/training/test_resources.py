"""Modeled-memory meter and OOM semantics."""

import pytest

from repro.training.resources import OutOfModeledMemory, ResourceMeter, activation_bytes


def test_register_and_total():
    meter = ResourceMeter()
    meter.register("graph", 1000)
    meter.register("params", 500)
    assert meter.total_bytes == 1500
    assert meter.peak_bytes == 1500


def test_upsert_replaces_component():
    meter = ResourceMeter()
    meter.register("activations", 1000)
    meter.register("activations", 200)
    assert meter.total_bytes == 200
    assert meter.peak_bytes == 1000  # peak is retained


def test_release_keeps_peak():
    meter = ResourceMeter()
    meter.register("transient", 700)
    meter.release("transient")
    assert meter.total_bytes == 0
    assert meter.peak_bytes == 700
    meter.release("never-registered")  # no-op


def test_budget_violation_raises():
    meter = ResourceMeter(budget_bytes=1000)
    meter.register("a", 600)
    with pytest.raises(OutOfModeledMemory) as excinfo:
        meter.register("b", 600)
    assert excinfo.value.requested == 1200
    assert excinfo.value.budget == 1000
    assert "a" in excinfo.value.components


def test_no_budget_never_raises():
    meter = ResourceMeter()
    meter.register("huge", 10**15)
    assert meter.peak_gb() == pytest.approx(10**6)


def test_breakdown_in_mb():
    meter = ResourceMeter()
    meter.register("x", 2_000_000)
    assert meter.breakdown() == {"x": 2.0}


def test_activation_bytes_scales_with_relations():
    base = activation_bytes(100, 8, 2, num_relations=1)
    rich = activation_bytes(100, 8, 2, num_relations=50)
    assert rich > base
    fused = activation_bytes(100, 8, 2, num_relations=50, relation_materialized=False)
    assert fused < rich
    assert fused == activation_bytes(100, 8, 2, num_relations=1, relation_materialized=False)


def test_activation_bytes_formula():
    # hidden states: n*(L+1)*d; messages: n*R*d; 8 bytes each.
    assert activation_bytes(10, 4, 2, num_relations=3) == (10 * 4 * 3 + 10 * 4 * 3) * 8
