"""Trainer loops: traces, early stopping, metric plumbing."""

import numpy as np

from repro.core.tasks import LinkPredictionTask, NodeClassificationTask, Split
from repro.training.trainer import TrainConfig, train_link_predictor, train_node_classifier


class _FakeNCModel:
    """Deterministic model whose accuracy improves per epoch."""

    def __init__(self, task, improve=True):
        self.task = task
        self.epochs_seen = 0
        self.improve = improve

    def train_epoch(self, rng):
        self.epochs_seen += 1
        return 1.0 / self.epochs_seen

    def predict_logits(self):
        n = self.task.num_targets
        logits = np.zeros((n, self.task.num_labels))
        quality = min(self.epochs_seen, 5) / 5 if self.improve else 0.0
        correct = int(n * quality)
        for i in range(n):
            if i < correct:
                logits[i, self.task.labels[i]] = 1.0
            else:
                logits[i, (self.task.labels[i] + 1) % self.task.num_labels] = 1.0
        return logits

    def num_parameters(self):
        return 123


def _nc_task(n=20):
    labels = np.arange(n) % 3
    return NodeClassificationTask(
        name="T", target_class=0, target_nodes=np.arange(n), labels=labels,
        num_labels=3,
        split=Split(np.arange(0, n - 6), np.arange(n - 6, n - 3), np.arange(n - 3, n)),
    )


def test_nc_trainer_runs_all_epochs_and_traces():
    task = _nc_task()
    model = _FakeNCModel(task)
    result = train_node_classifier(model, task, TrainConfig(epochs=6, eval_every=2))
    assert result.epochs_run == 6
    assert len(result.trace) == 3
    assert result.num_parameters == 123
    times = [point.seconds for point in result.trace]
    assert times == sorted(times)
    losses = [point.train_loss for point in result.trace]
    assert losses == sorted(losses, reverse=True)


def test_nc_trainer_early_stops_on_plateau():
    task = _nc_task()
    model = _FakeNCModel(task, improve=False)
    result = train_node_classifier(
        model, task, TrainConfig(epochs=50, eval_every=1, patience=3)
    )
    assert result.epochs_run < 50


def test_nc_final_metric_reflects_improvement():
    task = _nc_task()
    model = _FakeNCModel(task)
    result = train_node_classifier(model, task, TrainConfig(epochs=10, eval_every=5))
    assert result.test_metric == 1.0
    assert result.metric_name == "accuracy"


class _FakeLPModel:
    """Scores exactly the true (head, tail) pairs highest.

    Per-pair scoring (no dependence on call shape or batch position), like
    the real LP models — the evaluator is free to score pairs one edge at a
    time or in one flat batch.  Task edges are (i, n-1-i), so the true tail
    of head ``h`` is ``pool_size - 1 - h``.
    """

    def __init__(self, pool_size=30, good=True):
        self.pool_size = pool_size
        self.good = good

    def train_epoch(self, rng):
        return 0.5

    def candidate_pool(self):
        return np.arange(self.pool_size)

    def score_pairs(self, heads, tails):
        if self.good:
            return np.where(tails == self.pool_size - 1 - heads, 10.0, 0.0)
        return np.zeros(len(tails))

    def num_parameters(self):
        return 7


def _lp_task(n=30):
    edges = np.stack([np.arange(n), np.arange(n)[::-1]], axis=1)
    return LinkPredictionTask(
        name="LP", predicate=0, head_class=0, tail_class=0, edges=edges,
        split=Split(np.arange(0, n - 10), np.arange(n - 10, n - 5), np.arange(n - 5, n)),
    )


def test_lp_trainer_perfect_model():
    task = _lp_task()
    result = train_link_predictor(_FakeLPModel(), task, TrainConfig(epochs=3, eval_every=1))
    assert result.test_metric == 1.0
    assert result.metric_name == "hits@10"


def test_lp_trainer_constant_model_scores_zero():
    task = _lp_task()
    config = TrainConfig(epochs=2, eval_every=1, num_eval_negatives=25)
    result = train_link_predictor(_FakeLPModel(good=False), task, config)
    assert result.test_metric == 0.0


def test_lp_eval_subsampling():
    task = _lp_task()
    config = TrainConfig(epochs=1, eval_every=1, max_eval_examples=2)
    result = train_link_predictor(_FakeLPModel(), task, config)
    assert result.test_metric == 1.0


class _NoisyLPModel(_FakeLPModel):
    """Deterministic pseudo-random float32 scores with plenty of ties.

    Quantized to a coarse grid so the pessimistic tie-handling of
    ``rank_of_true`` actually fires, and float32 so the vectorized path's
    float64 upcast is exercised too.
    """

    def score_pairs(self, heads, tails):
        mixed = (heads * 2654435761 + tails * 40503) % 97
        return (mixed // 7).astype(np.float32)


def test_lp_vectorized_eval_matches_scalar_oracle():
    """The batched evaluator is bit-identical to the one-edge-at-a-time one.

    Same generator seed on both sides: the vectorized path must make the
    same draws in the same order AND rank ties identically.
    """
    from repro.training.trainer import _evaluate_lp, _evaluate_lp_scalar

    task = _lp_task()
    model = _NoisyLPModel()
    for negatives in (5, 25, 60):  # 60 > pool clamps to the whole pool
        config = TrainConfig(num_eval_negatives=negatives, hits_k=3)
        for positions in (task.split.valid, task.split.test, np.array([], dtype=np.int64)):
            batched = _evaluate_lp(
                model, task, positions, config, np.random.default_rng(123)
            )
            scalar = _evaluate_lp_scalar(
                model, task, positions, config, np.random.default_rng(123)
            )
            assert batched == scalar


def test_lp_vectorized_eval_subsample_draws_match_scalar():
    """Subsampling consumes the generator identically on both paths."""
    from repro.training.trainer import _evaluate_lp, _evaluate_lp_scalar

    task = _lp_task()
    model = _NoisyLPModel()
    config = TrainConfig(num_eval_negatives=10, max_eval_examples=4, hits_k=2)
    batched = _evaluate_lp(
        model, task, task.split.train, config, np.random.default_rng(9)
    )
    scalar = _evaluate_lp_scalar(
        model, task, task.split.train, config, np.random.default_rng(9)
    )
    assert batched == scalar


def test_sample_eval_pairs_block_draw_matches_scalar():
    """One (edges × negatives) block draw ≡ one rng.choice call per edge.

    Bitwise on all three outputs AND on the generator state afterwards —
    the block draw must consume exactly the same PCG64 words, or any
    later consumer of the shared generator diverges.
    """
    from repro.training.trainer import _sample_eval_pairs, _sample_eval_pairs_scalar

    task = _lp_task()
    pool = np.unique(task.edges[:, 1])
    for negatives in (1, 5, 25, 60):  # 60 > pool clamps to the whole pool
        config = TrainConfig(num_eval_negatives=negatives)
        block_rng = np.random.default_rng(321)
        scalar_rng = np.random.default_rng(321)
        heads, tails, counts = _sample_eval_pairs(task.edges, pool, config, block_rng)
        s_heads, s_tails, s_counts = _sample_eval_pairs_scalar(
            task.edges, pool, config, scalar_rng
        )
        np.testing.assert_array_equal(heads, s_heads)
        np.testing.assert_array_equal(tails, s_tails)
        np.testing.assert_array_equal(counts, s_counts)
        assert heads.dtype == s_heads.dtype and tails.dtype == s_tails.dtype
        assert block_rng.bit_generator.state == scalar_rng.bit_generator.state
