"""Split construction (Table II schemas)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.training.splits import stratified_random_split, time_split


def test_time_split_respects_order():
    timestamps = np.asarray([2020, 2010, 2015, 2021, 2012])
    split = time_split(timestamps, ratios=(0.6, 0.2, 0.2))
    train_years = timestamps[split.train]
    test_years = timestamps[split.test]
    assert train_years.max() <= test_years.min()
    assert split.schema == "time"


def test_time_split_partition_complete():
    timestamps = np.arange(100)
    split = time_split(timestamps, ratios=(0.8, 0.1, 0.1))
    combined = np.sort(np.concatenate([split.train, split.valid, split.test]))
    assert combined.tolist() == list(range(100))
    assert len(split.train) == 80


def test_stratified_split_preserves_label_presence():
    labels = np.asarray([0] * 50 + [1] * 30 + [2] * 20)
    split = stratified_random_split(labels, (0.8, 0.1, 0.1), np.random.default_rng(0))
    for label in (0, 1, 2):
        assert (labels[split.train] == label).any()
    combined = np.sort(np.concatenate([split.train, split.valid, split.test]))
    assert combined.tolist() == list(range(100))


def test_stratified_split_tiny_label_keeps_training_example():
    labels = np.asarray([0] * 50 + [1])  # a single example of label 1
    split = stratified_random_split(labels, (0.8, 0.1, 0.1), np.random.default_rng(0))
    assert (labels[split.train] == 1).any()


def test_invalid_ratios_rejected():
    with pytest.raises(ValueError):
        time_split(np.arange(5), ratios=(0.0, 0.0, 0.0))


def test_ratios_normalised():
    split = time_split(np.arange(10), ratios=(8, 1, 1))
    assert len(split.train) == 8


@settings(max_examples=30)
@given(
    st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=80),
    st.integers(min_value=0, max_value=100),
)
def test_stratified_partition_property(labels, seed):
    labels = np.asarray(labels)
    split = stratified_random_split(labels, (0.7, 0.15, 0.15), np.random.default_rng(seed))
    combined = np.sort(np.concatenate([split.train, split.valid, split.test]))
    assert combined.tolist() == list(range(len(labels)))
    # No example appears in two parts.
    assert len(set(split.train) & set(split.valid)) == 0
    assert len(set(split.train) & set(split.test)) == 0
    assert len(set(split.valid) & set(split.test)) == 0
