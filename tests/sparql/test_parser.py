"""Parser: the SPARQL subset of Section IV-C."""

import pytest

from repro.sparql.ast import BGP, IRI, RDF_TYPE, Union, Var
from repro.sparql.parser import SparqlSyntaxError, parse_query


def test_simple_select():
    query = parse_query("select ?s ?p ?o where { ?s ?p ?o . }")
    assert isinstance(query.body, BGP)
    assert [p.output.name for p in query.projections] == ["s", "p", "o"]
    assert len(query.body.patterns) == 1


def test_star_projection():
    query = parse_query("SELECT * WHERE { ?s ?p ?o }")
    assert query.projections == ()
    assert [v.name for v in query.output_variables()] == ["s", "p", "o"]


def test_a_keyword_expands_to_rdf_type():
    query = parse_query("select ?v where { ?v a <Paper> . }")
    pattern = query.body.patterns[0]
    assert isinstance(pattern.p, IRI) and pattern.p.value == RDF_TYPE
    assert pattern.is_type_pattern()
    assert pattern.o == IRI("Paper")


def test_alias_projection():
    query = parse_query("select ?v as ?s ?p ?o where { ?v ?p ?o . }")
    first = query.projections[0]
    assert first.source == Var("v")
    assert first.alias == Var("s")
    assert [v.name for v in query.output_variables()] == ["s", "p", "o"]


def test_parenthesised_alias():
    query = parse_query("select (?v as ?s) where { ?v a <T> . }")
    assert query.projections[0].alias == Var("s")


def test_limit_offset():
    query = parse_query("select ?s where { ?s ?p ?o } limit 10 offset 20")
    assert query.limit == 10
    assert query.offset == 20


def test_paper_union_query_qd2h1():
    text = """select ?s ?p ?o {
      select ?v as ?s ?p ?o where { ?v a <Node_Type_URI>. ?v ?p ?o.}
      union select ?s ?p ?v as ?o where { ?v a <Node_Type_URI>. ?s ?p ?v.}
    }"""
    query = parse_query(text)
    assert isinstance(query.body, Union)
    assert len(query.body.arms) == 2
    for arm in query.body.arms:
        assert [v.name for v in arm.output_variables()] == ["s", "p", "o"]
        assert len(arm.body.patterns) == 2


def test_braced_union_arms():
    text = """select ?s { { select ?v as ?s where { ?v a <A> . } }
                           union { select ?v as ?s where { ?v a <B> . } } }"""
    query = parse_query(text)
    assert isinstance(query.body, Union)
    assert len(query.body.arms) == 2


def test_multiple_patterns_with_optional_trailing_dot():
    query = parse_query("select ?x where { ?x a <T> . ?x <r> ?y }")
    assert len(query.body.patterns) == 2


def test_error_on_missing_select():
    with pytest.raises(SparqlSyntaxError):
        parse_query("where { ?s ?p ?o }")


def test_error_on_empty_pattern():
    with pytest.raises(SparqlSyntaxError):
        parse_query("select ?s where { }")


def test_error_on_trailing_tokens():
    with pytest.raises(SparqlSyntaxError):
        parse_query("select ?s where { ?s ?p ?o } garbage ?x")


def test_error_on_bad_character():
    with pytest.raises(SparqlSyntaxError):
        parse_query("select ?s where { ?s ?p %%% }")


def test_error_on_unterminated_query():
    with pytest.raises(SparqlSyntaxError):
        parse_query("select ?s where { ?s ?p")


def test_with_page_creates_copy():
    query = parse_query("select ?s where { ?s ?p ?o }")
    paged = query.with_page(limit=5, offset=10)
    assert paged.limit == 5 and paged.offset == 10
    assert query.limit is None and query.offset is None


def test_query_str_roundtrips_through_parser():
    original = parse_query(
        "select ?v as ?s ?p ?o where { ?v a <T> . ?v ?p ?o . } limit 7 offset 3"
    )
    reparsed = parse_query(str(original))
    assert reparsed == original


def test_negative_limit_rejected():
    with pytest.raises(SparqlSyntaxError, match="LIMIT must be a non-negative integer"):
        parse_query("select ?s ?p ?o where { ?s ?p ?o } limit -1")


def test_negative_offset_rejected():
    with pytest.raises(SparqlSyntaxError, match="OFFSET must be a non-negative integer"):
        parse_query("select ?s ?p ?o where { ?s ?p ?o } limit 5 offset -3")


def test_zero_modifiers_still_parse():
    query = parse_query("select ?s ?p ?o where { ?s ?p ?o } limit 0 offset 0")
    assert query.limit == 0
    assert query.offset == 0


def test_stray_minus_in_pattern_rejected():
    with pytest.raises(SparqlSyntaxError):
        parse_query("select ?s where { ?s - ?o }")
