"""Executor: BGP evaluation against the hexastore."""

import numpy as np
import pytest

from repro.sparql.executor import QueryExecutor
from repro.sparql.parser import parse_query


def _rows(result):
    return {
        tuple(int(result.columns[v][i]) for v in result.variables)
        for i in range(result.num_rows)
    }


def test_single_pattern_all_triples(toy_kg):
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(parse_query("select ?s ?p ?o where { ?s ?p ?o }"))
    assert result.num_rows == toy_kg.num_edges


def test_type_pattern_enumeration(toy_kg):
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(parse_query("select ?v where { ?v a <Paper> . }"))
    papers = set(toy_kg.nodes_of_type(toy_kg.class_vocab.id("Paper")).tolist())
    assert {int(v) for (v,) in _rows(result)} == papers


def test_type_pattern_filters_bound_variable(toy_kg):
    executor = QueryExecutor(toy_kg)
    # Out-neighbours of papers that are themselves papers (cites targets).
    query = parse_query("select ?v ?o where { ?v a <Paper> . ?v <cites> ?o . ?o a <Paper> . }")
    result = executor.evaluate(query)
    p0, p2 = toy_kg.node_vocab.id("p0"), toy_kg.node_vocab.id("p2")
    p3, p1 = toy_kg.node_vocab.id("p3"), toy_kg.node_vocab.id("p1")
    assert _rows(result) == {(p0, p2), (p3, p1)}


def test_constant_predicate(toy_kg):
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(parse_query("select ?s ?o where { ?s <publishedIn> ?o . }"))
    assert result.num_rows == 3


def test_constant_subject_and_object(toy_kg):
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(parse_query("select ?p where { <p0> ?p <a0> . }"))
    assert result.num_rows == 1
    assert toy_kg.relation_vocab.term(int(result.columns["p"][0])) == "hasAuthor"


def test_unknown_iri_yields_empty(toy_kg):
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(parse_query("select ?o where { <nonexistent> ?p ?o . }"))
    assert result.num_rows == 0
    result = executor.evaluate(parse_query("select ?v where { ?v a <NoSuchClass> . }"))
    assert result.num_rows == 0


def test_fully_constant_pattern_as_existence_filter(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query("select ?v where { <p0> <cites> <p2> . ?v a <Venue> . }")
    assert executor.evaluate(query).num_rows == 2
    query = parse_query("select ?v where { <p0> <cites> <p1> . ?v a <Venue> . }")
    assert executor.evaluate(query).num_rows == 0


def test_variable_class_pattern(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query("select ?c where { <p0> a ?c . }")
    result = executor.evaluate(query)
    assert result.num_rows == 1
    assert toy_kg.class_vocab.term(int(result.columns["c"][0])) == "Paper"


def test_repeated_variable_in_pattern(toy_kg):
    executor = QueryExecutor(toy_kg)
    # No self-loops exist in the toy graph.
    result = executor.evaluate(parse_query("select ?v where { ?v ?p ?v . }"))
    assert result.num_rows == 0


def test_union_concatenates_arms(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query(
        """select ?s ?p ?o {
             select ?v as ?s ?p ?o where { ?v a <Paper>. ?v ?p ?o. }
             union select ?s ?p ?v as ?o where { ?v a <Paper>. ?s ?p ?v. }
           }"""
    )
    result = executor.evaluate(query)
    # 11 paper-outgoing + 2 paper-incoming (cites) = 13 rows with overlap.
    assert result.num_rows == 13
    triples = result.to_triples().deduplicated()
    # Every edge except the movie-domain ones touches a paper.
    assert len(triples) == 11


def test_pagination_determinism_and_coverage(toy_kg):
    executor = QueryExecutor(toy_kg)
    base = parse_query("select ?s ?p ?o where { ?s ?p ?o }")
    full = executor.evaluate(base)
    paged_rows = []
    for offset in range(0, full.num_rows, 4):
        page = executor.evaluate(base.with_page(limit=4, offset=offset))
        paged_rows.extend(_rows_list(page))
    assert paged_rows == _rows_list(full)


def _rows_list(result):
    return [
        tuple(int(result.columns[v][i]) for v in result.variables)
        for i in range(result.num_rows)
    ]


def test_count_ignores_pagination(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query("select ?s ?p ?o where { ?s ?p ?o } limit 2")
    assert executor.evaluate(query).num_rows == 2
    assert executor.count(query) == toy_kg.num_edges


def test_projection_of_unbound_variable_raises(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query("select ?missing where { ?s ?p ?o }")
    with pytest.raises(KeyError):
        executor.evaluate(query)


def test_join_on_shared_variable_matches_bruteforce(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query("select ?a ?x ?y where { ?x <hasAuthor> ?a . ?y <hasAuthor> ?a . }")
    result = executor.evaluate(query)
    expected = set()
    triples = list(toy_kg.triples)
    has_author = toy_kg.relation_vocab.id("hasAuthor")
    for s1, p1, o1 in triples:
        for s2, p2, o2 in triples:
            if p1 == has_author and p2 == has_author and o1 == o2:
                expected.add((o1, s1, s2))
    assert _rows(result) == expected
