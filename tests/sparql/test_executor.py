"""Executor: BGP evaluation against the hexastore."""

import numpy as np
import pytest

from repro.sparql.executor import QueryExecutor
from repro.sparql.parser import parse_query


def _rows(result):
    return {
        tuple(int(result.columns[v][i]) for v in result.variables)
        for i in range(result.num_rows)
    }


def test_single_pattern_all_triples(toy_kg):
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(parse_query("select ?s ?p ?o where { ?s ?p ?o }"))
    assert result.num_rows == toy_kg.num_edges


def test_type_pattern_enumeration(toy_kg):
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(parse_query("select ?v where { ?v a <Paper> . }"))
    papers = set(toy_kg.nodes_of_type(toy_kg.class_vocab.id("Paper")).tolist())
    assert {int(v) for (v,) in _rows(result)} == papers


def test_type_pattern_filters_bound_variable(toy_kg):
    executor = QueryExecutor(toy_kg)
    # Out-neighbours of papers that are themselves papers (cites targets).
    query = parse_query("select ?v ?o where { ?v a <Paper> . ?v <cites> ?o . ?o a <Paper> . }")
    result = executor.evaluate(query)
    p0, p2 = toy_kg.node_vocab.id("p0"), toy_kg.node_vocab.id("p2")
    p3, p1 = toy_kg.node_vocab.id("p3"), toy_kg.node_vocab.id("p1")
    assert _rows(result) == {(p0, p2), (p3, p1)}


def test_constant_predicate(toy_kg):
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(parse_query("select ?s ?o where { ?s <publishedIn> ?o . }"))
    assert result.num_rows == 3


def test_constant_subject_and_object(toy_kg):
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(parse_query("select ?p where { <p0> ?p <a0> . }"))
    assert result.num_rows == 1
    assert toy_kg.relation_vocab.term(int(result.columns["p"][0])) == "hasAuthor"


def test_unknown_iri_yields_empty(toy_kg):
    executor = QueryExecutor(toy_kg)
    result = executor.evaluate(parse_query("select ?o where { <nonexistent> ?p ?o . }"))
    assert result.num_rows == 0
    result = executor.evaluate(parse_query("select ?v where { ?v a <NoSuchClass> . }"))
    assert result.num_rows == 0


def test_fully_constant_pattern_as_existence_filter(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query("select ?v where { <p0> <cites> <p2> . ?v a <Venue> . }")
    assert executor.evaluate(query).num_rows == 2
    query = parse_query("select ?v where { <p0> <cites> <p1> . ?v a <Venue> . }")
    assert executor.evaluate(query).num_rows == 0


def test_variable_class_pattern(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query("select ?c where { <p0> a ?c . }")
    result = executor.evaluate(query)
    assert result.num_rows == 1
    assert toy_kg.class_vocab.term(int(result.columns["c"][0])) == "Paper"


def test_repeated_variable_in_pattern(toy_kg):
    executor = QueryExecutor(toy_kg)
    # No self-loops exist in the toy graph.
    result = executor.evaluate(parse_query("select ?v where { ?v ?p ?v . }"))
    assert result.num_rows == 0


def test_union_concatenates_arms(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query(
        """select ?s ?p ?o {
             select ?v as ?s ?p ?o where { ?v a <Paper>. ?v ?p ?o. }
             union select ?s ?p ?v as ?o where { ?v a <Paper>. ?s ?p ?v. }
           }"""
    )
    result = executor.evaluate(query)
    # 11 paper-outgoing + 2 paper-incoming (cites) = 13 rows with overlap.
    assert result.num_rows == 13
    triples = result.to_triples().deduplicated()
    # Every edge except the movie-domain ones touches a paper.
    assert len(triples) == 11


def test_pagination_determinism_and_coverage(toy_kg):
    executor = QueryExecutor(toy_kg)
    base = parse_query("select ?s ?p ?o where { ?s ?p ?o }")
    full = executor.evaluate(base)
    paged_rows = []
    for offset in range(0, full.num_rows, 4):
        page = executor.evaluate(base.with_page(limit=4, offset=offset))
        paged_rows.extend(_rows_list(page))
    assert paged_rows == _rows_list(full)


def _rows_list(result):
    return [
        tuple(int(result.columns[v][i]) for v in result.variables)
        for i in range(result.num_rows)
    ]


def test_count_ignores_pagination(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query("select ?s ?p ?o where { ?s ?p ?o } limit 2")
    assert executor.evaluate(query).num_rows == 2
    assert executor.count(query) == toy_kg.num_edges


def test_projection_of_unbound_variable_raises(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query("select ?missing where { ?s ?p ?o }")
    with pytest.raises(KeyError):
        executor.evaluate(query)


def test_join_on_shared_variable_matches_bruteforce(toy_kg):
    executor = QueryExecutor(toy_kg)
    query = parse_query("select ?a ?x ?y where { ?x <hasAuthor> ?a . ?y <hasAuthor> ?a . }")
    result = executor.evaluate(query)
    expected = set()
    triples = list(toy_kg.triples)
    has_author = toy_kg.relation_vocab.id("hasAuthor")
    for s1, p1, o1 in triples:
        for s2, p2, o2 in triples:
            if p1 == has_author and p2 == has_author and o1 == o2:
                expected.add((o1, s1, s2))
    assert _rows(result) == expected


# -- multi-bound-variable joins (vectorized vs the scalar reference) --


def test_multi_bound_join_triangle(toy_kg):
    # Joining the third pattern binds both ?a and ?c: the composite-key path.
    executor = QueryExecutor(toy_kg)
    query = parse_query(
        "select ?a ?b ?c where { ?a <cites> ?b . ?b <hasAuthor> ?c . ?a <hasAuthor> ?c . }"
    )
    result = executor.evaluate(query)
    expected = set()
    triples = list(toy_kg.triples)
    cites = toy_kg.relation_vocab.id("cites")
    has_author = toy_kg.relation_vocab.id("hasAuthor")
    for s1, p1, o1 in triples:
        for s2, p2, o2 in triples:
            for s3, p3, o3 in triples:
                if p1 == cites and p2 == has_author and p3 == has_author:
                    if o1 == s2 and s1 == s3 and o2 == o3:
                        expected.add((s1, o1, o2))
    assert _rows(result) == expected


def test_join_kernel_validation(toy_kg):
    with pytest.raises(ValueError):
        QueryExecutor(toy_kg, join_kernel="vectorised")


def test_batch_join_matches_scalar_reference_row_for_row(toy_kg):
    queries = [
        "select ?a ?b ?c where { ?a <cites> ?b . ?b <hasAuthor> ?c . ?a <hasAuthor> ?c . }",
        "select ?a ?b where { ?a <hasAuthor> ?b . ?a <publishedIn> ?v . ?a <hasAuthor> ?b . }",
        "select ?x ?y ?a where { ?x <hasAuthor> ?a . ?y <hasAuthor> ?a . ?x <cites> ?y . }",
        "select ?s ?p ?o where { ?s ?p ?o . ?s ?p ?o . }",
        "select ?v ?o where { ?v a <Paper> . ?v <cites> ?o . ?o a <Paper> . }",
    ]
    for text in queries:
        query = parse_query(text)
        batch = QueryExecutor(toy_kg, join_kernel="batch").evaluate(query)
        scalar = QueryExecutor(toy_kg, join_kernel="scalar").evaluate(query)
        assert batch.variables == scalar.variables
        for variable in batch.variables:
            assert np.array_equal(batch.columns[variable], scalar.columns[variable]), text


def test_batch_join_matches_scalar_reference_random_graphs():
    from repro.kg.graph import KnowledgeGraph
    from repro.kg.triples import TripleStore
    from repro.kg.vocabulary import Vocabulary

    rng = np.random.default_rng(11)
    num_nodes, num_relations = 12, 3
    queries = [
        "select ?a ?c where { ?a <r0> ?b . ?b <r1> ?c . ?a <r2> ?c . }",
        "select ?a ?b where { ?a <r0> ?b . ?b <r0> ?a . }",
        "select ?a ?b ?c where { ?a ?p ?b . ?b <r1> ?c . ?a ?q ?c . }",
        "select ?a where { ?a <r0> ?b . ?c <r1> ?b . ?a <r2> ?c . }",
    ]
    for _trial in range(15):
        count = int(rng.integers(5, 60))
        triples = list(
            {
                (
                    int(rng.integers(num_nodes)),
                    int(rng.integers(num_relations)),
                    int(rng.integers(num_nodes)),
                )
                for _ in range(count)
            }
        )
        kg = KnowledgeGraph(
            node_vocab=Vocabulary([f"n{i}" for i in range(num_nodes)]),
            class_vocab=Vocabulary(["C0"]),
            relation_vocab=Vocabulary([f"r{i}" for i in range(num_relations)]),
            node_types=np.zeros(num_nodes, dtype=np.int64),
            triples=TripleStore.from_triples(triples),
        )
        for text in queries:
            query = parse_query(text)
            batch = QueryExecutor(kg, join_kernel="batch").evaluate(query)
            scalar = QueryExecutor(kg, join_kernel="scalar").evaluate(query)
            for variable in batch.variables:
                assert np.array_equal(
                    batch.columns[variable], scalar.columns[variable]
                ), text


def test_page_clamps_negative_offset_and_limit(toy_kg):
    """Regression: negatives must not fall through to Python slice wrap.

    ``page(-3, None)`` used to slice from the *end* of the result (the
    last three rows); SPARQL solution modifiers are non-negative, so a
    negative offset skips nothing and a negative limit keeps nothing.
    """
    executor = QueryExecutor(toy_kg)
    full = executor.evaluate(parse_query("select ?s ?p ?o where { ?s ?p ?o }"))
    assert full.num_rows > 3

    negative_offset = full.page(-3, None)
    assert negative_offset.num_rows == full.num_rows  # not the last 3 rows
    for v in full.variables:
        np.testing.assert_array_equal(
            negative_offset.columns[v], full.columns[v]
        )

    assert full.page(-3, 2).num_rows == 2  # OFFSET clamps to 0, LIMIT holds
    np.testing.assert_array_equal(
        full.page(-3, 2).columns["s"], full.page(0, 2).columns["s"]
    )
    assert full.page(0, -1).num_rows == 0  # negative LIMIT keeps nothing
    assert full.page(None, -5).num_rows == 0
    assert full.page(2, -1).num_rows == 0


def test_iter_pages_concatenates_bit_exact(toy_kg):
    executor = QueryExecutor(toy_kg)
    full = executor.evaluate(parse_query("select ?s ?p ?o where { ?s ?p ?o }"))
    for page_rows in (1, 3, full.num_rows, full.num_rows + 10):
        pages = list(full.iter_pages(page_rows))
        assert len(pages) == -(-full.num_rows // page_rows)
        merged = pages[0]
        for page in pages[1:]:
            merged = merged.concat(page)
        for v in full.variables:
            np.testing.assert_array_equal(merged.columns[v], full.columns[v])


def test_iter_pages_empty_result_yields_nothing(toy_kg):
    executor = QueryExecutor(toy_kg)
    empty = executor.evaluate(
        parse_query("select ?s ?o where { ?s <noSuchRelation> ?o }")
    )
    assert list(empty.iter_pages(4)) == []


def test_iter_pages_rejects_non_positive_page_rows(toy_kg):
    executor = QueryExecutor(toy_kg)
    full = executor.evaluate(parse_query("select ?s ?p ?o where { ?s ?p ?o }"))
    with pytest.raises(ValueError):
        list(full.iter_pages(0))
    with pytest.raises(ValueError):
        list(full.iter_pages(-2))
