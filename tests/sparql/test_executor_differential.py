"""Differential testing: the executor vs a brute-force reference evaluator.

Random BGPs over random small KGs are evaluated both by the index-backed
executor and by naive nested-loop enumeration; the solution multisets must
match exactly.  This is the strongest correctness guarantee we have for
the join machinery that Algorithm 3 rides on.
"""

import itertools
from collections import Counter

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore
from repro.kg.vocabulary import Vocabulary
from repro.sparql.ast import BGP, IRI, RDF_TYPE, SelectQuery, TriplePattern, Var
from repro.sparql.executor import QueryExecutor

_NUM_NODES = 6
_NUM_CLASSES = 3
_NUM_RELATIONS = 3
_VARS = ["a", "b", "c"]


def _make_kg(node_types, triples):
    return KnowledgeGraph(
        node_vocab=Vocabulary([f"n{i}" for i in range(_NUM_NODES)]),
        class_vocab=Vocabulary([f"C{i}" for i in range(_NUM_CLASSES)]),
        relation_vocab=Vocabulary([f"r{i}" for i in range(_NUM_RELATIONS)]),
        node_types=np.asarray(node_types, dtype=np.int64),
        # RDF triples are a *set*; deduplicate like a real store would.
        triples=TripleStore.from_triples(triples).deduplicated() if triples else TripleStore(),
    )


def _brute_force(kg, patterns, variables):
    """Enumerate all assignments of variables to ids and filter."""
    solutions = Counter()
    # Variable domain: node ids for s/o positions; relation ids for p.
    var_positions = {}
    for pattern in patterns:
        for position, term in (("s", pattern.s), ("p", pattern.p), ("o", pattern.o)):
            if isinstance(term, Var):
                var_positions.setdefault(term.name, set()).add(position)
    domains = []
    names = sorted(var_positions)
    for name in names:
        if var_positions[name] == {"p"}:
            domains.append(range(_NUM_RELATIONS))
        elif "p" in var_positions[name]:
            domains.append(range(0))  # mixed positions unsupported
        else:
            domains.append(range(_NUM_NODES))
    triple_set = kg.triples.to_set()
    for assignment in itertools.product(*domains):
        binding = dict(zip(names, assignment))

        def value(term, position):
            if isinstance(term, Var):
                return binding[term.name]
            if position == "p":
                if term.value == RDF_TYPE:
                    return RDF_TYPE
                resolved = kg.relation_vocab.get(term.value)
            elif position == "o" and term.value.startswith("C"):
                resolved = kg.class_vocab.get(term.value)
            else:
                resolved = kg.node_vocab.get(term.value)
            return resolved

        ok = True
        for pattern in patterns:
            p_val = value(pattern.p, "p")
            s_val = value(pattern.s, "s")
            if p_val == RDF_TYPE:
                class_val = (
                    binding[pattern.o.name]
                    if isinstance(pattern.o, Var)
                    else kg.class_vocab.get(pattern.o.value)
                )
                if s_val is None or class_val is None or int(kg.node_types[s_val]) != class_val:
                    ok = False
                    break
            else:
                o_val = value(pattern.o, "o")
                if s_val is None or p_val is None or o_val is None:
                    ok = False
                    break
                if (s_val, p_val, o_val) not in triple_set:
                    ok = False
                    break
        if ok:
            solutions[tuple(binding[v] for v in variables)] += 1
    return solutions


# Hypothesis strategies for random graphs and patterns.
node_types_st = st.lists(
    st.integers(0, _NUM_CLASSES - 1), min_size=_NUM_NODES, max_size=_NUM_NODES
)
triples_st = st.lists(
    st.tuples(
        st.integers(0, _NUM_NODES - 1),
        st.integers(0, _NUM_RELATIONS - 1),
        st.integers(0, _NUM_NODES - 1),
    ),
    max_size=20,
)


def term_st(kind):
    if kind == "s":
        return st.one_of(
            st.sampled_from([Var(v) for v in _VARS]),
            st.sampled_from([IRI(f"n{i}") for i in range(_NUM_NODES)]),
        )
    if kind == "p":
        return st.one_of(
            st.sampled_from([Var(v) for v in _VARS]),
            st.sampled_from([IRI(f"r{i}") for i in range(_NUM_RELATIONS)]),
        )
    return st.one_of(
        st.sampled_from([Var(v) for v in _VARS]),
        st.sampled_from([IRI(f"n{i}") for i in range(_NUM_NODES)]),
    )


plain_pattern_st = st.builds(TriplePattern, term_st("s"), term_st("p"), term_st("o"))
type_pattern_st = st.builds(
    TriplePattern,
    term_st("s"),
    st.just(IRI(RDF_TYPE)),
    st.sampled_from([IRI(f"C{i}") for i in range(_NUM_CLASSES)]),
)
pattern_st = st.one_of(plain_pattern_st, type_pattern_st)


def _var_in_p_and_elsewhere(patterns):
    """Our reference evaluator cannot type variables used as both
    predicate and node — skip those combinations."""
    p_vars, node_vars = set(), set()
    for pattern in patterns:
        if isinstance(pattern.p, Var):
            p_vars.add(pattern.p.name)
        for term in (pattern.s, pattern.o):
            if isinstance(term, Var):
                node_vars.add(term.name)
    return bool(p_vars & node_vars)


@settings(max_examples=120, deadline=None)
@given(node_types_st, triples_st, st.lists(pattern_st, min_size=1, max_size=3))
def test_executor_matches_bruteforce(node_types, triples, patterns):
    if _var_in_p_and_elsewhere(patterns):
        return
    kg = _make_kg(node_types, triples)
    bgp = BGP(tuple(patterns))
    variables = [v.name for v in bgp.variables()]
    if not variables:
        return
    query = SelectQuery((), bgp)
    result = QueryExecutor(kg).evaluate(query)
    got = Counter(
        tuple(int(result.columns[v][row]) for v in variables)
        for row in range(result.num_rows)
    )
    expected = _brute_force(kg, patterns, variables)
    assert got == expected
