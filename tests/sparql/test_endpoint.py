"""Endpoint: pagination, workers, accounting."""

import numpy as np
import pytest

from repro.sparql.endpoint import SparqlEndpoint
from repro.sparql.parser import parse_query

ALL = "select ?s ?p ?o where { ?s ?p ?o }"


def test_query_accounts_stats(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    result = endpoint.query(ALL)
    assert result.num_rows == toy_kg.num_edges
    assert endpoint.stats.requests == 1
    assert endpoint.stats.rows_returned == toy_kg.num_edges
    assert endpoint.stats.bytes_raw > 0


def test_compression_reduces_shipped_bytes(toy_kg):
    compressed = SparqlEndpoint(toy_kg, compression=True)
    plain = SparqlEndpoint(toy_kg, compression=False)
    compressed.query(ALL)
    plain.query(ALL)
    assert plain.stats.compression_ratio() == 1.0
    assert compressed.stats.bytes_raw == plain.stats.bytes_raw
    # zlib on tiny payloads may not shrink, but accounting must be coherent.
    assert compressed.stats.bytes_shipped > 0


def test_count_endpoint(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    assert endpoint.count(ALL) == toy_kg.num_edges
    assert endpoint.stats.requests == 1  # counts are requests too


def test_fetch_paginated_covers_everything(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    pages = endpoint.fetch_paginated(ALL, batch_size=4)
    assert sum(p.num_rows for p in pages) == toy_kg.num_edges
    assert all(p.num_rows <= 4 for p in pages)


def test_fetch_paginated_parallel_matches_serial(toy_kg):
    serial = SparqlEndpoint(toy_kg).fetch_paginated(ALL, batch_size=3, workers=1)
    parallel = SparqlEndpoint(toy_kg).fetch_paginated(ALL, batch_size=3, workers=4)
    serial_rows = [tuple(map(int, (p.columns["s"][i], p.columns["p"][i], p.columns["o"][i])))
                   for p in serial for i in range(p.num_rows)]
    parallel_rows = [tuple(map(int, (p.columns["s"][i], p.columns["p"][i], p.columns["o"][i])))
                     for p in parallel for i in range(p.num_rows)]
    assert serial_rows == parallel_rows


def test_fetch_all_merges_pages(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    merged = endpoint.fetch_all(ALL, batch_size=5)
    assert merged.num_rows == toy_kg.num_edges


def test_fetch_all_empty_result(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    merged = endpoint.fetch_all("select ?v where { ?v a <NoClass> . }", batch_size=5)
    assert merged.num_rows == 0
    assert merged.variables == ["v"]


def test_invalid_batch_size(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    with pytest.raises(ValueError):
        endpoint.fetch_paginated(ALL, batch_size=0)


def test_parsed_query_accepted(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    parsed = parse_query(ALL)
    assert endpoint.query(parsed).num_rows == toy_kg.num_edges
