"""Endpoint: pagination, workers, accounting."""

import pytest

from repro.sparql.endpoint import EndpointStats, SparqlEndpoint
from repro.sparql.parser import parse_query

ALL = "select ?s ?p ?o where { ?s ?p ?o }"


def test_query_accounts_stats(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    result = endpoint.query(ALL)
    assert result.num_rows == toy_kg.num_edges
    assert endpoint.stats.requests == 1
    assert endpoint.stats.rows_returned == toy_kg.num_edges
    assert endpoint.stats.bytes_raw > 0


def test_compression_reduces_shipped_bytes(toy_kg):
    compressed = SparqlEndpoint(toy_kg, compression=True)
    plain = SparqlEndpoint(toy_kg, compression=False)
    compressed.query(ALL)
    plain.query(ALL)
    assert plain.stats.compression_ratio() == 1.0
    assert compressed.stats.bytes_raw == plain.stats.bytes_raw
    # zlib on tiny payloads may not shrink, but accounting must be coherent.
    assert compressed.stats.bytes_shipped > 0


def test_count_endpoint(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    assert endpoint.count(ALL) == toy_kg.num_edges
    assert endpoint.stats.requests == 1  # counts are requests too


def test_fetch_paginated_covers_everything(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    pages = endpoint.fetch_paginated(ALL, batch_size=4)
    assert sum(p.num_rows for p in pages) == toy_kg.num_edges
    assert all(p.num_rows <= 4 for p in pages)


def test_fetch_paginated_parallel_matches_serial(toy_kg):
    serial = SparqlEndpoint(toy_kg).fetch_paginated(ALL, batch_size=3, workers=1)
    parallel = SparqlEndpoint(toy_kg).fetch_paginated(ALL, batch_size=3, workers=4)
    serial_rows = [tuple(map(int, (p.columns["s"][i], p.columns["p"][i], p.columns["o"][i])))
                   for p in serial for i in range(p.num_rows)]
    parallel_rows = [tuple(map(int, (p.columns["s"][i], p.columns["p"][i], p.columns["o"][i])))
                     for p in parallel for i in range(p.num_rows)]
    assert serial_rows == parallel_rows


def test_fetch_all_merges_pages(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    merged = endpoint.fetch_all(ALL, batch_size=5)
    assert merged.num_rows == toy_kg.num_edges


def test_fetch_all_empty_result(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    merged = endpoint.fetch_all("select ?v where { ?v a <NoClass> . }", batch_size=5)
    assert merged.num_rows == 0
    assert merged.variables == ["v"]


def test_invalid_batch_size(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    with pytest.raises(ValueError):
        endpoint.fetch_paginated(ALL, batch_size=0)


def test_parsed_query_accepted(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    parsed = parse_query(ALL)
    assert endpoint.query(parsed).num_rows == toy_kg.num_edges


# -- edge cases: empty results, oversized pages, zero-byte accounting --

EMPTY = "select ?v where { ?v a <NoClass> . }"


def test_fetch_paginated_empty_result_returns_no_pages(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    pages = endpoint.fetch_paginated(EMPTY, batch_size=5)
    assert pages == []
    # Only the count probe was issued; no page requests.
    assert endpoint.stats.requests == 1
    assert endpoint.stats.rows_returned == 0


def test_fetch_paginated_known_zero_total_skips_count(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    assert endpoint.fetch_paginated(EMPTY, batch_size=5, total=0) == []
    assert endpoint.stats.requests == 0


def test_fetch_paginated_page_size_larger_than_result(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    pages = endpoint.fetch_paginated(ALL, batch_size=10_000)
    assert len(pages) == 1
    assert pages[0].num_rows == toy_kg.num_edges
    # One count + one (single-page) fetch.
    assert endpoint.stats.requests == 2


def test_fetch_all_empty_result_keeps_projected_variables(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    merged = endpoint.fetch_all(EMPTY, batch_size=4)
    assert merged.num_rows == 0
    assert merged.variables == ["v"]


def test_fetch_all_single_oversized_page_matches_unpaged(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    merged = endpoint.fetch_all(ALL, batch_size=10_000, workers=3)
    unpaged = SparqlEndpoint(toy_kg).query(ALL)
    assert merged.num_rows == unpaged.num_rows
    for variable in merged.variables:
        assert merged.columns[variable].tolist() == unpaged.columns[variable].tolist()


# -- query-log retention: bounded by default, opt-in full history --


def test_query_log_is_bounded_under_sustained_traffic(toy_kg):
    """Regression: the per-request query log must not grow without bound."""
    from repro.sparql.endpoint import QUERY_LOG_LIMIT

    endpoint = SparqlEndpoint(toy_kg)
    total = QUERY_LOG_LIMIT + 50
    for _ in range(total):
        endpoint.count(ALL)
    # Counters stay exact over the whole lifetime ...
    assert endpoint.stats.requests == total
    # ... while the log is a ring of only the most recent queries.
    assert len(endpoint.stats.queries) == QUERY_LOG_LIMIT
    assert endpoint.stats.queries.maxlen == QUERY_LOG_LIMIT


def test_query_log_keeps_most_recent_entries(toy_kg):
    endpoint = SparqlEndpoint(toy_kg, query_log=3)
    endpoint.count(ALL)
    for _ in range(3):
        endpoint.query(ALL)
    assert len(endpoint.stats.queries) == 3
    assert all(not q.startswith("COUNT") for q in endpoint.stats.queries)


def test_query_log_opt_in_full_retention(toy_kg):
    endpoint = SparqlEndpoint(toy_kg, query_log=None)
    from repro.sparql.endpoint import QUERY_LOG_LIMIT

    total = QUERY_LOG_LIMIT + 10
    for _ in range(total):
        endpoint.count(ALL)
    assert len(endpoint.stats.queries) == total


def test_compression_ratio_with_zero_bytes_is_one(toy_kg):
    # Fresh stats: nothing shipped yet, the ratio must not divide by zero.
    assert EndpointStats().compression_ratio() == 1.0
    endpoint = SparqlEndpoint(toy_kg, compression=True)
    endpoint.query(EMPTY)  # zero-row page serializes to zero raw bytes
    assert endpoint.stats.bytes_raw == 0
    ratio = endpoint.stats.compression_ratio()
    assert ratio >= 0.0  # coherent even though zlib adds header bytes
    plain = SparqlEndpoint(toy_kg, compression=False)
    plain.query(EMPTY)
    assert plain.stats.bytes_shipped == 0
    assert plain.stats.compression_ratio() == 1.0


def test_stream_pages_concatenates_bit_exact(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    query = "select ?s ?p ?o where { ?s ?p ?o }"
    expected = SparqlEndpoint(toy_kg).query(query)

    stream = endpoint.stream_pages(query, page_rows=4)
    assert stream.variables == list(expected.variables)
    assert stream.total_rows == expected.num_rows
    assert stream.num_pages == -(-expected.num_rows // 4)

    pages = list(stream.pages)
    assert len(pages) == stream.num_pages
    assert all(page.num_rows <= 4 for page in pages)
    merged = pages[0]
    for page in pages[1:]:
        merged = merged.concat(page)
    for v in expected.variables:
        assert merged.columns[v].tolist() == expected.columns[v].tolist()


def test_stream_pages_accounts_stats_per_shipped_page(toy_kg):
    endpoint = SparqlEndpoint(toy_kg, compression=False)
    query = "select ?s ?p ?o where { ?s ?p ?o }"
    stream = endpoint.stream_pages(query, page_rows=5)
    # The request is counted at plan time; rows/bytes only as pages ship.
    assert endpoint.stats.requests == 1
    assert endpoint.stats.rows_returned == 0

    iterator = stream.pages
    first = next(iterator)
    assert endpoint.stats.rows_returned == first.num_rows
    assert endpoint.stats.bytes_raw > 0
    for _page in iterator:
        pass
    assert endpoint.stats.rows_returned == stream.total_rows
    assert any(q.startswith("STREAM(") for q in endpoint.stats.queries)


def test_stream_pages_honours_query_pagination(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    stream = endpoint.stream_pages(
        "select ?s ?p ?o where { ?s ?p ?o } limit 6 offset 2", page_rows=4
    )
    expected = SparqlEndpoint(toy_kg).query(
        "select ?s ?p ?o where { ?s ?p ?o } limit 6 offset 2"
    )
    pages = list(stream.pages)
    merged = pages[0]
    for page in pages[1:]:
        merged = merged.concat(page)
    assert merged.num_rows == expected.num_rows == 6
    for v in expected.variables:
        assert merged.columns[v].tolist() == expected.columns[v].tolist()


def test_stream_pages_empty_result(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    stream = endpoint.stream_pages(
        "select ?s ?o where { ?s <noSuchRelation> ?o }", page_rows=4
    )
    assert stream.total_rows == 0
    assert stream.num_pages == 0
    assert list(stream.pages) == []


def test_stream_pages_rejects_non_positive_page_rows(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    with pytest.raises(ValueError):
        endpoint.stream_pages("select ?s ?p ?o where { ?s ?p ?o }", page_rows=0)
