"""Shared RGCN building blocks."""

import numpy as np
import pytest

from repro.models.base import ModelConfig, RGCNLayer, RGCNStack, restrict_matrices
from repro.nn.tensor import Tensor
from repro.transform.adjacency import build_hetero_adjacency


def test_rgcn_layer_forward_shape(toy_kg):
    adjacency = build_hetero_adjacency(toy_kg)
    rng = np.random.default_rng(0)
    layer = RGCNLayer(adjacency.num_relations, 6, 4, rng)
    out = layer(Tensor(rng.normal(size=(toy_kg.num_nodes, 6))), adjacency.matrices)
    assert out.shape == (toy_kg.num_nodes, 4)
    assert (out.data >= 0).all()  # relu


def test_rgcn_layer_relation_count_checked(toy_kg):
    adjacency = build_hetero_adjacency(toy_kg)
    layer = RGCNLayer(3, 6, 4, np.random.default_rng(0))
    with pytest.raises(ValueError):
        layer(Tensor(np.zeros((toy_kg.num_nodes, 6))), adjacency.matrices)


def test_rgcn_layer_isolated_node_uses_self_loop(toy_kg):
    adjacency = build_hetero_adjacency(toy_kg)
    rng = np.random.default_rng(0)
    layer = RGCNLayer(adjacency.num_relations, 4, 4, rng, activation=False)
    x = np.zeros((toy_kg.num_nodes, 4))
    m4 = toy_kg.node_vocab.id("m0")
    x[m4] = 1.0
    out = layer(Tensor(x), adjacency.matrices)
    expected = x[m4] @ layer.self_weight.data + layer.bias.data
    assert np.allclose(out.data[m4], expected)


def test_rgcn_stack_depth_and_dims(toy_kg):
    adjacency = build_hetero_adjacency(toy_kg)
    rng = np.random.default_rng(0)
    stack = RGCNStack(adjacency.num_relations, [8, 8, 3], rng, dropout=0.0)
    assert stack.num_layers == 2
    out = stack(Tensor(rng.normal(size=(toy_kg.num_nodes, 8))), adjacency.matrices)
    assert out.shape == (toy_kg.num_nodes, 3)


def test_rgcn_stack_needs_two_dims():
    with pytest.raises(ValueError):
        RGCNStack(2, [8], np.random.default_rng(0))


def test_stack_gradients_flow(toy_kg):
    adjacency = build_hetero_adjacency(toy_kg)
    rng = np.random.default_rng(0)
    stack = RGCNStack(adjacency.num_relations, [4, 4], rng)
    x = Tensor(rng.normal(size=(toy_kg.num_nodes, 4)), requires_grad=True)
    loss = (stack(x, adjacency.matrices) ** 2).sum()
    loss.backward()
    assert x.grad is not None
    # Self-loop weight of the single layer must receive gradient.
    assert stack.layer(0).self_weight.grad is not None


def test_restrict_matrices(toy_kg):
    adjacency = build_hetero_adjacency(toy_kg, normalize=False)
    nodes = np.asarray([toy_kg.node_vocab.id("p0"), toy_kg.node_vocab.id("a0")])
    matrices, sorted_nodes = restrict_matrices(adjacency, nodes)
    assert len(matrices) == adjacency.num_relations
    has_author = toy_kg.relation_vocab.id("hasAuthor")
    local_p0 = int(np.searchsorted(sorted_nodes, toy_kg.node_vocab.id("p0")))
    local_a0 = int(np.searchsorted(sorted_nodes, toy_kg.node_vocab.id("a0")))
    assert matrices[has_author][local_p0, local_a0] == 1.0


def test_model_config_rng_deterministic():
    config = ModelConfig(seed=5)
    assert config.rng().integers(1000) == ModelConfig(seed=5).rng().integers(1000)
