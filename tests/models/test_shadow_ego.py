"""ShaDowSAINT ego extraction: batched BFS kernel vs the scalar oracle.

`extract_ego_batch` advances all roots in lock-step; randomness is
content-addressed (splitmix64 keys over salt/root/hop/source/neighbour), so
the batched kernel must reproduce the per-root scalar oracle bit-for-bit:
same node insertion order, same fanout selections, same edge lists.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kg.graph import KnowledgeGraph
from repro.models import ModelConfig
from repro.models.shadowsaint import (
    ShaDowSAINTClassifier,
    extract_ego,
    extract_ego_batch,
)


def _random_kg(num_nodes, num_relations, num_triples, seed):
    rng = np.random.default_rng(seed)
    nodes = [(f"n{i}", "T") for i in range(num_nodes)]
    triples = list(
        {
            (
                f"n{int(rng.integers(num_nodes))}",
                f"r{int(rng.integers(num_relations))}",
                f"n{int(rng.integers(num_nodes))}",
            )
            for _ in range(num_triples)
        }
    )
    return KnowledgeGraph.build(nodes, triples, name="rand")


def _assert_equal_egos(got, expected):
    assert np.array_equal(got.nodes, expected.nodes)
    assert np.array_equal(got.src, expected.src)
    assert np.array_equal(got.dst, expected.dst)
    assert np.array_equal(got.rel, expected.rel)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=3, max_value=30),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=5),
)
def test_batch_matches_scalar_oracle_property(num_nodes, seed, depth, fanout):
    kg = _random_kg(num_nodes, 3, num_nodes * 3, seed)
    rng = np.random.default_rng(seed + 1)
    roots = rng.choice(num_nodes, size=min(num_nodes, 8), replace=False)
    salt = int(rng.integers(2**63))
    batch = extract_ego_batch(kg, roots, depth=depth, fanout=fanout, salt=salt)
    assert len(batch) == len(roots)
    for root, ego in zip(roots, batch):
        _assert_equal_egos(ego, extract_ego(kg, int(root), depth, fanout, salt))


def test_chunking_does_not_change_scopes():
    kg = _random_kg(25, 2, 80, seed=3)
    roots = np.arange(25)
    whole = extract_ego_batch(kg, roots, depth=2, fanout=3, salt=9)
    for chunk_size in (1, 4, 11, 25, 100):
        chunked = extract_ego_batch(
            kg, roots, depth=2, fanout=3, salt=9, chunk_size=chunk_size
        )
        for a, b in zip(whole, chunked):
            _assert_equal_egos(a, b)


def test_root_is_first_and_scope_bounded():
    kg = _random_kg(30, 2, 150, seed=5)
    roots = np.arange(0, 30, 4)
    depth, fanout = 2, 3
    for root, ego in zip(roots, extract_ego_batch(kg, roots, depth=depth, fanout=fanout)):
        assert ego.nodes[0] == root
        assert len(np.unique(ego.nodes)) == len(ego.nodes)
        # Geometric fanout bound on the scope size.
        assert len(ego.nodes) <= 1 + fanout + fanout * fanout


def test_edges_are_internal_and_complete():
    kg = _random_kg(20, 2, 90, seed=8)
    store = kg.triples
    for root, ego in zip([0, 5, 9], extract_ego_batch(kg, np.asarray([0, 5, 9]), 2, 4, salt=2)):
        scope = set(ego.nodes.tolist())
        local_of = {int(node): i for i, node in enumerate(ego.nodes)}
        expected = set()
        for s, p, o in zip(store.s, store.p, store.o):
            if int(s) in scope and int(o) in scope:
                expected.add((local_of[int(s)], int(p), local_of[int(o)]))
        got = set(zip(ego.src.tolist(), ego.rel.tolist(), ego.dst.tolist()))
        assert got == expected


def test_salt_changes_subsample_but_not_distribution_support():
    kg = _random_kg(40, 1, 400, seed=13)
    roots = np.asarray([0])
    a = extract_ego_batch(kg, roots, depth=1, fanout=2, salt=1)[0]
    b = extract_ego_batch(kg, roots, depth=1, fanout=2, salt=2)[0]
    # Same scope size cap; at least sometimes different picks.
    assert len(a.nodes) <= 3 and len(b.nodes) <= 3
    several = {
        tuple(extract_ego_batch(kg, roots, depth=1, fanout=2, salt=s)[0].nodes.tolist())
        for s in range(12)
    }
    assert len(several) > 1, "different salts should eventually pick different scopes"


def test_dangling_root_and_depth_zero():
    kg = KnowledgeGraph.build(
        [("a", "T"), ("b", "T"), ("c", "T")], [("a", "r", "b")], name="tiny"
    )
    egos = extract_ego_batch(kg, np.asarray([kg.node_vocab.id("c")]), depth=2, fanout=2)
    assert egos[0].nodes.tolist() == [kg.node_vocab.id("c")]
    assert len(egos[0].src) == 0
    zero = extract_ego_batch(kg, np.asarray([kg.node_vocab.id("a")]), depth=0, fanout=2)
    assert zero[0].nodes.tolist() == [kg.node_vocab.id("a")]


def test_parameter_validation():
    kg = _random_kg(5, 1, 6, seed=1)
    with pytest.raises(ValueError):
        extract_ego_batch(kg, np.asarray([0]), depth=-1)
    with pytest.raises(ValueError):
        extract_ego_batch(kg, np.asarray([0]), fanout=0)


def test_classifier_uses_batch_extraction(toy_kg, toy_task):
    config = ModelConfig(hidden_dim=8, num_layers=1, seed=3)
    model = ShaDowSAINTClassifier(toy_kg, toy_task, config, depth=1, fanout=2)
    oracle = [
        extract_ego(toy_kg, int(root), depth=1, fanout=2, salt=model._ego_salt)
        for root in toy_task.target_nodes
    ]
    assert len(model._egos) == len(oracle)
    for got, expected in zip(model._egos, oracle):
        _assert_equal_egos(got, expected)
