"""The four NC methods: interface compliance + learnability.

Each model must (i) expose the trainer protocol, (ii) overfit the toy task
(memorisation sanity), and (iii) register modeled memory.
"""

import numpy as np
import pytest

from repro.models import (
    GraphSAINTClassifier,
    ModelConfig,
    RGCNNodeClassifier,
    SeHGNNClassifier,
    ShaDowSAINTClassifier,
)
from repro.nn.functional import accuracy
from repro.training import ResourceMeter, TrainConfig, train_node_classifier

CONFIG = ModelConfig(hidden_dim=16, num_layers=2, dropout=0.0, lr=0.05, batch_size=16)

ALL_MODELS = [RGCNNodeClassifier, GraphSAINTClassifier, ShaDowSAINTClassifier, SeHGNNClassifier]


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_predict_logits_shape(toy_kg, toy_task, model_cls):
    model = model_cls(toy_kg, toy_task, CONFIG)
    logits = model.predict_logits()
    assert logits.shape == (toy_task.num_targets, toy_task.num_labels)


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_train_epoch_returns_finite_loss(toy_kg, toy_task, model_cls):
    model = model_cls(toy_kg, toy_task, CONFIG)
    loss = model.train_epoch(np.random.default_rng(0))
    assert np.isfinite(loss)


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_loss_decreases_with_training(toy_kg, toy_task, model_cls):
    model = model_cls(toy_kg, toy_task, CONFIG)
    rng = np.random.default_rng(0)
    first = model.train_epoch(rng)
    for _ in range(30):
        last = model.train_epoch(rng)
    assert last < first


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_overfits_train_split(toy_kg, toy_task, model_cls):
    model = model_cls(toy_kg, toy_task, CONFIG)
    rng = np.random.default_rng(0)
    for _ in range(60):
        model.train_epoch(rng)
    logits = model.predict_logits()
    train = toy_task.split.train
    assert accuracy(logits[train], toy_task.labels[train]) >= 0.75


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_memory_registration(toy_kg, toy_task, model_cls):
    meter = ResourceMeter()
    model_cls(toy_kg, toy_task, CONFIG, meter=meter)
    assert meter.peak_bytes > 0
    assert "parameters" in meter.components


def test_rgcn_fullbatch_registers_relation_heavy_activations(toy_kg, toy_task):
    meter = ResourceMeter()
    RGCNNodeClassifier(toy_kg, toy_task, CONFIG, meter=meter)
    assert meter.components["activations"] > meter.components["parameters"] * 0


def test_graphsaint_with_brw_sampler(toy_kg, toy_task):
    model = GraphSAINTClassifier.with_brw(
        toy_kg, toy_task, CONFIG, walk_length=2, batch_size=4
    )
    loss = model.train_epoch(np.random.default_rng(0))
    assert np.isfinite(loss)


def test_graphsaint_trains_through_trainer(toy_kg, toy_task):
    meter = ResourceMeter()
    model = GraphSAINTClassifier(toy_kg, toy_task, CONFIG, meter=meter)
    result = train_node_classifier(model, toy_task, TrainConfig(epochs=3, eval_every=1), meter)
    assert result.epochs_run == 3
    assert result.peak_memory_bytes > 0


def test_shadow_ego_graphs_bounded(toy_kg, toy_task):
    model = ShaDowSAINTClassifier(toy_kg, toy_task, CONFIG, depth=1, fanout=2)
    for ego in model._egos:
        assert len(ego.nodes) <= 1 + 2  # root + fanout at depth 1
        assert ego.nodes[0] in toy_task.target_nodes


def test_shadow_flat_gather_assembly_matches_scalar_oracle(toy_kg, toy_task):
    """Minibatch assembly via flat-array gathers is bit-identical to the
    per-ego concatenation + per-relation mask oracle, including duplicate
    and permuted ego selections."""
    model = ShaDowSAINTClassifier(toy_kg, toy_task, CONFIG, depth=2, fanout=3)
    num = len(model._egos)
    batches = [
        np.arange(num),
        np.arange(num)[::-1],
        np.array([0]),
        np.array([num - 1, 0, num - 1]),  # duplicates allowed
        np.random.default_rng(7).integers(0, num, size=2 * num),
    ]
    for batch in batches:
        nodes, matrices, roots = model._assemble(batch)
        s_nodes, s_matrices, s_roots = model._assemble_scalar(batch)
        np.testing.assert_array_equal(nodes, s_nodes)
        np.testing.assert_array_equal(roots, s_roots)
        assert len(matrices) == len(s_matrices)
        for matrix, oracle in zip(matrices, s_matrices):
            np.testing.assert_array_equal(matrix.indptr, oracle.indptr)
            np.testing.assert_array_equal(matrix.indices, oracle.indices)
            np.testing.assert_array_equal(matrix.data, oracle.data)


def test_sehgnn_metapath_features_precomputed(toy_kg, toy_task):
    model = SeHGNNClassifier(toy_kg, toy_task, CONFIG, feature_dim=8, num_two_hop=2)
    assert model.metapath_features.shape[0] == toy_task.num_targets
    assert model.metapath_features.shape[1] == model.num_metapaths
    assert model.metapath_names[0] == "self"


def test_model_size_scales_with_relations(toy_kg, toy_task):
    """Fewer relations => smaller RGCN (Table IV model-size effect)."""
    from repro.core.api import extract_tosg

    full = RGCNNodeClassifier(toy_kg, toy_task, CONFIG)
    tosa = extract_tosg(toy_kg, toy_task, method="sparql", direction=1, hops=1)
    small = RGCNNodeClassifier(tosa.subgraph, tosa.task, CONFIG)
    assert small.num_parameters() < full.num_parameters()
