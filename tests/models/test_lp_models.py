"""The three LP methods: interface compliance + learnability."""

import numpy as np
import pytest

from repro.core.tasks import LinkPredictionTask, Split
from repro.models import LHGNNPredictor, ModelConfig, MorsEPredictor, RGCNLinkPredictor
from repro.training import ResourceMeter, TrainConfig, train_link_predictor

CONFIG = ModelConfig(hidden_dim=16, num_layers=1, dropout=0.0, lr=0.05, batch_size=32, margin=1.0)

ALL_MODELS = [RGCNLinkPredictor, MorsEPredictor, LHGNNPredictor]


@pytest.fixture
def lp_setup(toy_kg):
    papers = [toy_kg.node_vocab.id(f"p{i}") for i in range(6)]
    authors = [toy_kg.node_vocab.id(f"a{i}") for i in range(3)]
    edges = np.asarray(
        [[papers[0], authors[0]], [papers[1], authors[0]],
         [papers[2], authors[1]], [papers[3], authors[1]],
         [papers[4], authors[2]], [papers[5], authors[2]]]
    )
    task = LinkPredictionTask(
        name="HA", predicate=toy_kg.relation_vocab.id("hasAuthor"),
        head_class=toy_kg.class_vocab.id("Paper"),
        tail_class=toy_kg.class_vocab.id("Author"),
        edges=edges,
        split=Split(np.arange(4), np.asarray([4]), np.asarray([5])),
    )
    return toy_kg, task


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_train_epoch_finite(lp_setup, model_cls):
    kg, task = lp_setup
    model = model_cls(kg, task, CONFIG)
    assert np.isfinite(model.train_epoch(np.random.default_rng(0)))


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_candidate_pool_is_tail_class(lp_setup, model_cls):
    kg, task = lp_setup
    model = model_cls(kg, task, CONFIG)
    pool = model.candidate_pool()
    author_class = kg.class_vocab.id("Author")
    assert all(kg.node_types[n] == author_class for n in pool)
    assert len(pool) == 3


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_score_pairs_shape_and_determinism(lp_setup, model_cls):
    kg, task = lp_setup
    model = model_cls(kg, task, CONFIG)
    heads = task.edges[:3, 0]
    tails = task.edges[:3, 1]
    first = model.score_pairs(heads, tails)
    second = model.score_pairs(heads, tails)
    assert first.shape == (3,)
    assert np.allclose(first, second)  # cached embeddings are stable


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_cache_invalidated_by_training(lp_setup, model_cls):
    kg, task = lp_setup
    model = model_cls(kg, task, CONFIG)
    heads, tails = task.edges[:2, 0], task.edges[:2, 1]
    before = model.score_pairs(heads, tails).copy()
    model.train_epoch(np.random.default_rng(0))
    after = model.score_pairs(heads, tails)
    assert not np.allclose(before, after)


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_loss_decreases(lp_setup, model_cls):
    kg, task = lp_setup
    model = model_cls(kg, task, CONFIG)
    rng = np.random.default_rng(0)
    first = model.train_epoch(rng)
    for _ in range(40):
        last = model.train_epoch(rng)
    assert last <= first


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_memory_registration(lp_setup, model_cls):
    kg, task = lp_setup
    meter = ResourceMeter()
    model_cls(kg, task, CONFIG, meter=meter)
    assert meter.peak_bytes > 0


def test_lhgnn_is_heaviest(lp_setup):
    kg, task = lp_setup
    meters = {}
    for model_cls in ALL_MODELS:
        meter = ResourceMeter()
        model_cls(kg, task, CONFIG, meter=meter)
        meters[model_cls.name] = meter.peak_bytes
    assert meters["LHGNN"] > meters["RGCN"]
    assert meters["LHGNN"] > meters["MorsE"]


def test_morse_is_lighter_than_rgcn(lp_setup):
    """MorsE's entity-independent design avoids the |V|×|R| blowup."""
    kg, task = lp_setup
    rgcn_meter, morse_meter = ResourceMeter(), ResourceMeter()
    RGCNLinkPredictor(kg, task, CONFIG, meter=rgcn_meter)
    MorsEPredictor(kg, task, CONFIG, meter=morse_meter)
    assert morse_meter.components["activations"] < rgcn_meter.components["activations"]


def test_lp_through_trainer(lp_setup):
    kg, task = lp_setup
    meter = ResourceMeter()
    model = RGCNLinkPredictor(kg, task, CONFIG, meter=meter)
    config = TrainConfig(epochs=5, eval_every=1, num_eval_negatives=2)
    result = train_link_predictor(model, task, config, meter)
    assert result.metric_name == "hits@10"
    assert 0.0 <= result.test_metric <= 1.0


def test_empty_train_split_returns_zero_loss(toy_kg):
    task = LinkPredictionTask(
        name="empty", predicate=0, head_class=0, tail_class=1,
        edges=np.empty((0, 2), dtype=np.int64),
        split=Split(np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64),
                    np.asarray([], dtype=np.int64)),
    )
    model = RGCNLinkPredictor(toy_kg, task, CONFIG)
    assert model.train_epoch(np.random.default_rng(0)) == 0.0
