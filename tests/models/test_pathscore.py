"""PathScore: the KagNet-style path-reasoning LP scorer.

LP-protocol compliance (trainer compatibility), sensitivity to the
enumerated paths, and a checkpoint round-trip that must reproduce
predictions bit for bit — the property that lets ``/predict`` serve it.
"""

import numpy as np
import pytest

from repro.core.tasks import LinkPredictionTask, Split
from repro.models import ModelConfig, PathScorePredictor
from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.training import ResourceMeter, TrainConfig, train_link_predictor

CONFIG = ModelConfig(
    hidden_dim=16, num_layers=1, dropout=0.0, lr=0.05, batch_size=32, margin=1.0
)


@pytest.fixture
def lp_setup(toy_kg):
    papers = [toy_kg.node_vocab.id(f"p{i}") for i in range(6)]
    authors = [toy_kg.node_vocab.id(f"a{i}") for i in range(3)]
    edges = np.asarray(
        [[papers[0], authors[0]], [papers[1], authors[0]],
         [papers[2], authors[1]], [papers[3], authors[1]],
         [papers[4], authors[2]], [papers[5], authors[2]]]
    )
    task = LinkPredictionTask(
        name="HA", predicate=toy_kg.relation_vocab.id("hasAuthor"),
        head_class=toy_kg.class_vocab.id("Paper"),
        tail_class=toy_kg.class_vocab.id("Author"),
        edges=edges,
        split=Split(np.arange(4), np.asarray([4]), np.asarray([5])),
    )
    return toy_kg, task


def test_train_epoch_finite_and_loss_decreases(lp_setup):
    kg, task = lp_setup
    model = PathScorePredictor(kg, task, CONFIG)
    rng = np.random.default_rng(0)
    first = model.train_epoch(rng)
    assert np.isfinite(first)
    for _ in range(40):
        last = model.train_epoch(rng)
    assert last <= first


def test_candidate_pool_is_tail_class(lp_setup):
    kg, task = lp_setup
    model = PathScorePredictor(kg, task, CONFIG)
    pool = model.candidate_pool()
    author_class = kg.class_vocab.id("Author")
    assert all(kg.node_types[n] == author_class for n in pool)


def test_score_pairs_deterministic_and_training_changes_scores(lp_setup):
    kg, task = lp_setup
    model = PathScorePredictor(kg, task, CONFIG)
    heads, tails = task.edges[:3, 0], task.edges[:3, 1]
    first = model.score_pairs(heads, tails)
    assert first.shape == (3,)
    assert np.array_equal(first, model.score_pairs(heads, tails))
    model.train_epoch(np.random.default_rng(0))
    assert not np.allclose(first, model.score_pairs(heads, tails))


def test_paths_inform_the_score(lp_setup):
    """A connected pair must not score like a disconnected one."""
    kg, task = lp_setup
    model = PathScorePredictor(kg, task, CONFIG)
    head, tail = int(task.edges[0, 0]), int(task.edges[0, 1])
    _, _, counts = model._padded_batch(
        np.asarray([head, tail]), np.asarray([tail, head])
    )
    # hasAuthor edges exist in the graph, so head -> tail has a path
    # while the reverse direction does not (directed enumeration).
    assert counts[0] > 0
    connected = model.score_pairs(np.asarray([head]), np.asarray([tail]))
    model._path_cache.clear()
    model._path_cache[(head, tail)] = []  # force the no-path fallback
    severed = model.score_pairs(np.asarray([head]), np.asarray([tail]))
    assert not np.allclose(connected, severed)


def test_memory_registration(lp_setup):
    kg, task = lp_setup
    meter = ResourceMeter()
    PathScorePredictor(kg, task, CONFIG, meter=meter)
    assert meter.peak_bytes > 0


def test_parameter_validation(lp_setup):
    kg, task = lp_setup
    with pytest.raises(ValueError):
        PathScorePredictor(kg, task, CONFIG, max_hops=0)
    with pytest.raises(ValueError):
        PathScorePredictor(kg, task, CONFIG, max_paths=-1)


def test_through_trainer(lp_setup):
    kg, task = lp_setup
    model = PathScorePredictor(kg, task, CONFIG, max_hops=2, max_paths=8)
    config = TrainConfig(epochs=3, eval_every=1, num_eval_negatives=2)
    result = train_link_predictor(model, task, config)
    assert result.metric_name == "hits@10"
    assert 0.0 <= result.test_metric <= 1.0


def test_checkpoint_round_trip_bit_exact(lp_setup, tmp_path):
    kg, task = lp_setup
    model = PathScorePredictor(kg, task, CONFIG, max_hops=2, max_paths=8)
    rng = np.random.default_rng(1)
    for _ in range(3):
        model.train_epoch(rng)
    heads, tails = task.edges[:, 0], task.edges[:, 1]
    expected = model.score_pairs(heads, tails)

    path = str(tmp_path / "pathscore.ckpt")
    save_checkpoint(model, path, metrics={"hits@10": 1.0})
    checkpoint = load_checkpoint(path)
    assert checkpoint.architecture == "PathScore"
    assert checkpoint.model_kwargs == {"max_hops": 2, "max_paths": 8}
    rebuilt = checkpoint.build_model(kg)
    assert rebuilt.max_hops == 2 and rebuilt.max_paths == 8
    assert np.array_equal(rebuilt.score_pairs(heads, tails), expected)
