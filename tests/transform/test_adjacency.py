"""Triples → CSR transformation (the Figure 4 mandatory step)."""

import numpy as np

from repro.transform.adjacency import build_csr, build_hetero_adjacency
from repro.transform.features import one_hot_type_features, xavier_features


def test_build_csr_both_is_symmetric(toy_kg):
    matrix = build_csr(toy_kg, direction="both")
    assert (matrix != matrix.T).nnz == 0


def test_build_csr_out_matches_triples(toy_kg):
    matrix = build_csr(toy_kg, direction="out")
    for s, _p, o in toy_kg.triples:
        assert matrix[s, o] == 1.0


def test_build_csr_in_is_transpose_of_out(toy_kg):
    out = build_csr(toy_kg, direction="out")
    into = build_csr(toy_kg, direction="in")
    assert (out.T != into).nnz == 0


def test_build_csr_binary_on_multi_edges():
    from repro.kg.graph import KnowledgeGraph
    from repro.kg.triples import TripleStore
    from repro.kg.vocabulary import Vocabulary

    kg = KnowledgeGraph(
        node_vocab=Vocabulary(["a", "b"]),
        class_vocab=Vocabulary(["T"]),
        relation_vocab=Vocabulary(["r", "q"]),
        node_types=np.zeros(2, dtype=np.int64),
        triples=TripleStore([0, 0], [0, 1], [1, 1]),  # two parallel edges
    )
    matrix = build_csr(kg, direction="out")
    assert matrix[0, 1] == 1.0


def test_hetero_adjacency_per_relation(toy_kg):
    adjacency = build_hetero_adjacency(toy_kg, add_reverse=False, normalize=False)
    assert adjacency.num_relations == toy_kg.num_edge_types
    cites = toy_kg.relation_vocab.id("cites")
    p0, p2 = toy_kg.node_vocab.id("p0"), toy_kg.node_vocab.id("p2")
    assert adjacency.matrices[cites][p0, p2] == 1.0
    total = sum(int(m.nnz) for m in adjacency.matrices)
    assert total == toy_kg.num_edges


def test_hetero_adjacency_reverse_relations(toy_kg):
    adjacency = build_hetero_adjacency(toy_kg, add_reverse=True, normalize=False)
    base = toy_kg.num_edge_types
    assert adjacency.num_relations == 2 * base
    for relation in range(base):
        forward = adjacency.matrices[relation]
        reverse = adjacency.matrices[relation + base]
        assert (forward.T != reverse).nnz == 0
        assert adjacency.relation_names[relation + base].endswith("~rev")


def test_row_normalization(toy_kg):
    adjacency = build_hetero_adjacency(toy_kg, add_reverse=True, normalize=True)
    for matrix in adjacency.matrices:
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        nonzero = sums[sums > 0]
        assert np.allclose(nonzero, 1.0)


def test_adjacency_nbytes(toy_kg):
    adjacency = build_hetero_adjacency(toy_kg)
    assert adjacency.nbytes() > 0
    assert adjacency.transform_seconds >= 0.0


def test_xavier_features_shape_and_bound():
    rng = np.random.default_rng(0)
    feats = xavier_features(100, 16, rng)
    assert feats.shape == (100, 16)
    bound = np.sqrt(6.0 / 16)
    assert np.abs(feats).max() <= bound


def test_one_hot_type_features(toy_kg):
    feats = one_hot_type_features(toy_kg)
    assert feats.shape == (toy_kg.num_nodes, toy_kg.num_node_types)
    assert np.allclose(feats.sum(axis=1), 1.0)
    assert (feats.argmax(axis=1) == toy_kg.node_types).all()
