"""Coalescer: window semantics, fan-out, failure propagation."""

import asyncio

import pytest

from repro.serve.coalesce import Coalescer
from repro.serve.metrics import ServiceMetrics


def run(coroutine):
    return asyncio.run(coroutine)


def test_size_trigger_forms_one_batch():
    batches = []

    def dispatch(key, items):
        batches.append((key, list(items)))
        return [item * 10 for item in items]

    async def scenario():
        coalescer = Coalescer(dispatch, max_batch=4, max_delay=60.0)
        results = await asyncio.gather(*(coalescer.submit("g", i) for i in range(4)))
        return results

    assert run(scenario()) == [0, 10, 20, 30]
    # max_delay was effectively infinite, so only the size trigger fired.
    assert batches == [("g", [0, 1, 2, 3])]


def test_time_trigger_flushes_partial_batch():
    batches = []

    def dispatch(key, items):
        batches.append(list(items))
        return list(items)

    async def scenario():
        coalescer = Coalescer(dispatch, max_batch=100, max_delay=0.005)
        return await asyncio.gather(coalescer.submit("g", 1), coalescer.submit("g", 2))

    assert run(scenario()) == [1, 2]
    assert batches == [[1, 2]]  # dispatched by the timer, well under max_batch


def test_keys_do_not_share_windows():
    batches = []

    def dispatch(key, items):
        batches.append((key, list(items)))
        return list(items)

    async def scenario():
        coalescer = Coalescer(dispatch, max_batch=2, max_delay=60.0)
        return await asyncio.gather(
            coalescer.submit(("g", 16), 1),
            coalescer.submit(("g", 32), 2),  # different k: must not merge
            coalescer.submit(("g", 16), 3),
            coalescer.submit(("g", 32), 4),
        )

    assert run(scenario()) == [1, 2, 3, 4]
    assert sorted(batches) == [(("g", 16), [1, 3]), (("g", 32), [2, 4])]


def test_oversubmission_rolls_into_next_window():
    batches = []

    def dispatch(key, items):
        batches.append(list(items))
        return list(items)

    async def scenario():
        coalescer = Coalescer(dispatch, max_batch=3, max_delay=0.005)
        return await asyncio.gather(*(coalescer.submit("g", i) for i in range(7)))

    assert run(scenario()) == list(range(7))
    assert [len(batch) for batch in batches] == [3, 3, 1]


def test_dispatch_error_fails_every_request_of_the_batch():
    def dispatch(key, items):
        raise RuntimeError("kernel exploded")

    async def scenario():
        coalescer = Coalescer(dispatch, max_batch=2, max_delay=60.0)
        return await asyncio.gather(
            coalescer.submit("g", 1),
            coalescer.submit("g", 2),
            return_exceptions=True,
        )

    first, second = run(scenario())
    assert isinstance(first, RuntimeError) and isinstance(second, RuntimeError)


def test_wrong_result_cardinality_is_an_error():
    def dispatch(key, items):
        return [1]  # one result for two items

    async def scenario():
        coalescer = Coalescer(dispatch, max_batch=2, max_delay=60.0)
        return await asyncio.gather(
            coalescer.submit("g", 1),
            coalescer.submit("g", 2),
            return_exceptions=True,
        )

    results = run(scenario())
    assert all(isinstance(r, RuntimeError) for r in results)


def test_max_batch_one_degenerates_to_per_request_dispatch():
    batches = []

    def dispatch(key, items):
        batches.append(list(items))
        return list(items)

    async def scenario():
        coalescer = Coalescer(dispatch, max_batch=1, max_delay=60.0)
        return await asyncio.gather(*(coalescer.submit("g", i) for i in range(3)))

    assert run(scenario()) == [0, 1, 2]
    assert [len(batch) for batch in batches] == [1, 1, 1]


def test_flush_dispatches_open_windows():
    batches = []

    def dispatch(key, items):
        batches.append(list(items))
        return list(items)

    async def scenario():
        coalescer = Coalescer(dispatch, max_batch=100, max_delay=60.0)
        pending = asyncio.ensure_future(coalescer.submit("g", 5))
        await asyncio.sleep(0)  # let submit open its window
        assert coalescer.open_windows == 1
        await coalescer.flush()
        assert coalescer.open_windows == 0
        return await pending

    assert run(scenario()) == 5
    assert batches == [[5]]


def test_metrics_record_batch_occupancy():
    metrics = ServiceMetrics()

    def dispatch(key, items):
        return list(items)

    async def scenario():
        coalescer = Coalescer(dispatch, max_batch=4, max_delay=0.005, metrics=metrics)
        await asyncio.gather(*(coalescer.submit("g", i) for i in range(8)))

    run(scenario())
    assert metrics.batches == 2
    assert metrics.batched_items == 8
    assert metrics.batch_occupancy() == 4.0
    assert metrics.batch_size_peak == 4


def test_zero_delay_window_never_hangs():
    """Regression: max_delay=0 must still close partially filled windows."""
    batches = []

    def dispatch(key, items):
        batches.append(list(items))
        return list(items)

    async def scenario():
        coalescer = Coalescer(dispatch, max_batch=64, max_delay=0.0)
        # Far fewer submissions than max_batch: only the (next-tick) timer
        # can close this window.
        return await asyncio.wait_for(
            asyncio.gather(*(coalescer.submit("g", i) for i in range(3))),
            timeout=5.0,
        )

    assert run(scenario()) == [0, 1, 2]
    # Same-tick submissions still coalesced into one batch.
    assert batches == [[0, 1, 2]]


def test_invalid_window_parameters_rejected():
    with pytest.raises(ValueError):
        Coalescer(lambda key, items: items, max_batch=0)
    with pytest.raises(ValueError):
        Coalescer(lambda key, items: items, max_delay=-1.0)
