"""ServiceMetrics: windows, EWMAs, and the error-separation contract."""

import asyncio

import pytest

from repro.serve import ExtractionService, ServiceMetrics


def test_error_latencies_stay_out_of_the_success_window():
    """Regression: fast-fail errors must not drag p50/p95 downward."""
    metrics = ServiceMetrics()
    for _ in range(10):
        metrics.record_completed("sparql", 1.0)
    baseline = metrics.snapshot()["requests"]["sparql"]
    assert baseline["p50_ms"] == pytest.approx(1000.0)

    # An error burst of fast fails (e.g. rejected shapes) arrives.
    for _ in range(100):
        metrics.record_completed("sparql", 0.001, error=True)

    after = metrics.snapshot()["requests"]["sparql"]
    assert after["completed"] == 10
    assert after["errors"] == 100
    # Success percentiles are untouched by the error burst ...
    assert after["p50_ms"] == pytest.approx(1000.0)
    assert after["p95_ms"] == pytest.approx(1000.0)
    assert after["window"] == 10
    # ... the error latencies are visible separately ...
    assert after["error_p50_ms"] == pytest.approx(1.0)
    assert after["error_window"] == 100
    # ... and the EWMA feeding retry_after is not dragged down either.
    assert metrics.ewma_request_seconds() == pytest.approx(1.0)
    assert metrics.ewma_request_seconds(kind="sparql") == pytest.approx(1.0)


def test_per_kind_ewma_is_tracked_separately():
    metrics = ServiceMetrics()
    for _ in range(50):
        metrics.record_completed("ppr", 0.01)
        metrics.record_completed("sparql", 1.0)
    assert metrics.ewma_request_seconds(kind="ppr") < 0.1
    assert metrics.ewma_request_seconds(kind="sparql") > 0.5
    # Unknown kind falls back to the caller's default.
    assert metrics.ewma_request_seconds(default=123.0, kind="ego") == 123.0


def test_snapshot_error_fields_default_to_zero():
    metrics = ServiceMetrics()
    metrics.record_completed("ppr", 0.5)
    snapshot = metrics.snapshot()["requests"]["ppr"]
    assert snapshot["error_window"] == 0
    assert snapshot["error_p50_ms"] == 0.0


def _seed(metrics: ServiceMetrics, kind: str, seconds: float, n: int = 50) -> None:
    for _ in range(n):
        metrics.record_completed(kind, seconds)


def test_retry_after_uses_the_rejected_kinds_rate(toy_kg):
    """Regression: a sparql reject must not inherit the PPR batch division.

    The old estimate divided every drain time by ``max_batch`` and floored
    at the coalescing window, so a queue full of slow SPARQL requests
    produced a hint ~64x too small.
    """
    service = ExtractionService(max_batch=64, max_delay=0.002)
    service.register("toy", toy_kg)
    _seed(service.metrics, "sparql", 0.5)
    _seed(service.metrics, "ppr", 0.01)
    service._pending = service.max_pending  # simulate a full queue

    sparql_hint = service._retry_after("sparql")
    ppr_hint = service._retry_after("ppr")

    # SPARQL requests are not coalesced: the drain estimate is the queue
    # at the *sparql* rate, undivided.
    assert sparql_hint == pytest.approx(service.max_pending * 0.5, rel=0.05)
    # The PPR estimate divides by the observed batch occupancy (none
    # recorded here -> factor 1), never blindly by max_batch.
    assert ppr_hint == pytest.approx(service.max_pending * 0.01, rel=0.05)
    assert sparql_hint > 40 * ppr_hint


def test_retry_after_divides_ppr_by_observed_occupancy(toy_kg):
    service = ExtractionService(max_batch=64, max_delay=0.002)
    service.register("toy", toy_kg)
    _seed(service.metrics, "ppr", 0.64)
    for _ in range(10):
        service.metrics.record_batch(32, 0.64)  # observed occupancy: 32
    service._pending = service.max_pending

    hint = service._retry_after("ppr")
    expected = service.max_pending * 0.64 / 32
    assert hint == pytest.approx(expected, rel=0.05)


def test_retry_after_floors_at_one_window_for_coalesced_kinds(toy_kg):
    service = ExtractionService(max_batch=64, max_delay=0.002)
    service.register("toy", toy_kg)
    _seed(service.metrics, "ppr", 1e-6)
    service._pending = 1
    assert service._retry_after("ppr") == pytest.approx(0.002)


def test_overloaded_sparql_request_carries_kind_specific_hint(toy_kg):
    """End-to-end: the hint on a real sparql rejection is the sparql rate."""
    service = ExtractionService(max_pending=1, max_batch=64, max_delay=0.002)
    service.register("toy", toy_kg)
    _seed(service.metrics, "sparql", 0.25)
    _seed(service.metrics, "ppr", 0.001)

    async def scenario():
        from repro.serve import ServiceOverloaded

        blocker = asyncio.ensure_future(
            service.sparql("toy", "select ?s ?p ?o where { ?s ?p ?o }")
        )
        await asyncio.sleep(0)  # let it occupy the single admission slot
        try:
            await service.sparql("toy", "select ?s ?p ?o where { ?s ?p ?o }")
        except ServiceOverloaded as exc:
            hint = exc.retry_after
        else:
            raise AssertionError("expected ServiceOverloaded")
        await blocker
        return hint

    hint = asyncio.run(scenario())
    # One pending request at the ~0.25s sparql rate; the old code answered
    # ~0.25/64 s here.
    assert hint > 0.1
