"""TCP front end: the ndjson request/response protocol."""

import asyncio
import json

from repro.kg.cache import artifacts_for
from repro.models.shadowsaint import extract_ego
from repro.sampling.ppr import ppr_top_k
from repro.serve import ExtractionService, bound_port, serve_tcp


async def _roundtrip(port, requests):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    responses = []
    for request in requests:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        responses.append(json.loads(await reader.readline()))
    writer.close()
    await writer.wait_closed()
    return responses


def serve_and_send(kg, requests, **service_kwargs):
    async def scenario():
        service = ExtractionService(**service_kwargs)
        service.register("toy", kg)
        server = await serve_tcp(service, port=0)
        async with server:
            return await _roundtrip(bound_port(server), requests)

    return asyncio.run(scenario())


def test_ping_graphs_and_metrics(toy_kg):
    responses = serve_and_send(
        toy_kg, [{"op": "ping"}, {"op": "graphs"}, {"op": "metrics"}]
    )
    assert responses[0] == {"ok": True, "result": "pong"}
    assert responses[1] == {"ok": True, "result": ["toy"]}
    assert responses[2]["ok"] and "admission" in responses[2]["result"]


def test_ppr_over_the_wire_matches_oracle(toy_kg, toy_task):
    target = int(toy_task.target_nodes[0])
    [response] = serve_and_send(
        toy_kg, [{"op": "ppr", "graph": "toy", "target": target, "k": 8}]
    )
    assert response["ok"]
    expected = ppr_top_k(artifacts_for(toy_kg).csr("both"), target, 8)
    assert response["result"] == [[node, score] for node, score in expected]


def test_ego_over_the_wire_matches_oracle(toy_kg, toy_task):
    root = int(toy_task.target_nodes[1])
    [response] = serve_and_send(
        toy_kg,
        [{"op": "ego", "graph": "toy", "root": root, "depth": 2, "fanout": 3, "salt": 9}],
    )
    assert response["ok"]
    expected = extract_ego(toy_kg, root, depth=2, fanout=3, salt=9)
    assert response["result"]["nodes"] == [int(v) for v in expected.nodes]
    assert response["result"]["rel"] == [int(v) for v in expected.rel]


def test_sparql_and_count_over_the_wire(toy_kg):
    query = "select ?s ?p ?o where { ?s ?p ?o }"
    responses = serve_and_send(
        toy_kg,
        [
            {"op": "sparql", "graph": "toy", "query": query},
            {"op": "count", "graph": "toy", "query": query},
        ],
    )
    assert responses[0]["ok"]
    assert responses[0]["result"]["num_rows"] == toy_kg.num_edges
    assert responses[1] == {"ok": True, "result": toy_kg.num_edges}


def test_bad_requests_answer_structured_errors_without_closing(toy_kg):
    responses = serve_and_send(
        toy_kg,
        [
            {"op": "warp"},
            {"op": "ppr", "graph": "missing", "target": 0},
            {"op": "ppr", "graph": "toy"},  # no target
            {"op": "ppr", "graph": "toy", "target": "eleventy"},  # mistyped
            {"op": "sparql", "graph": "toy"},  # no query
            {"op": "ego", "graph": "toy"},  # no root
            {"op": "ping"},  # connection must still be alive
        ],
    )
    assert [r["ok"] for r in responses] == [False] * 6 + [True]
    assert responses[0]["error"] == "bad_request"
    assert "unknown op" in responses[0]["detail"]
    # A missing graph is a structured unknown_graph error, not a KeyError
    # server error.
    assert responses[1]["error"] == "unknown_graph"
    assert "missing" in responses[1]["detail"]
    # A missing/mistyped field is a structured bad_request naming the
    # field, not an opaque KeyError.
    assert responses[2]["error"] == "bad_request"
    assert "'target'" in responses[2]["detail"]
    assert responses[3]["error"] == "bad_request"
    assert "'target'" in responses[3]["detail"]
    assert responses[4]["error"] == "bad_request"
    assert "'query'" in responses[4]["detail"]
    assert responses[5]["error"] == "bad_request"
    assert "'root'" in responses[5]["detail"]
    for response in responses[:6]:
        assert "KeyError" not in json.dumps(response)


def test_boolean_field_values_answer_bad_request(toy_kg):
    """JSON true must not cast to target=1 and return a wrong answer."""
    [response] = serve_and_send(
        toy_kg, [{"op": "ppr", "graph": "toy", "target": True}]
    )
    assert response["ok"] is False
    assert response["error"] == "bad_request"
    assert "'target'" in response["detail"]


def test_out_of_range_kernel_parameter_answers_bad_request(toy_kg, toy_task):
    target = int(toy_task.target_nodes[0])
    [response] = serve_and_send(
        toy_kg, [{"op": "ppr", "graph": "toy", "target": target, "alpha": 7}]
    )
    assert response["ok"] is False
    assert response["error"] == "bad_request"


def test_non_object_request_line_answers_bad_request(toy_kg):
    async def scenario():
        service = ExtractionService()
        service.register("toy", toy_kg)
        server = await serve_tcp(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            writer.write(b"[1, 2, 3]\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return response

    response = asyncio.run(scenario())
    assert response["ok"] is False
    assert response["error"] == "bad_request"
    assert "JSON object" in response["detail"]


def test_unparseable_line_answers_error(toy_kg):
    async def scenario():
        service = ExtractionService()
        service.register("toy", toy_kg)
        server = await serve_tcp(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            writer.write(b"this is not json\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return response

    response = asyncio.run(scenario())
    assert response["ok"] is False


def test_pipelined_requests_on_one_connection_coalesce(toy_kg, toy_task):
    """All lines written up front: handled concurrently, answered in order."""
    targets = [int(t) for t in toy_task.target_nodes]

    async def scenario():
        service = ExtractionService(max_batch=len(targets), max_delay=0.02)
        service.register("toy", toy_kg)
        server = await serve_tcp(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            for target in targets:
                writer.write(
                    json.dumps({"op": "ppr", "graph": "toy", "target": target}).encode()
                    + b"\n"
                )
            await writer.drain()
            responses = [json.loads(await reader.readline()) for _ in targets]
            writer.close()
            await writer.wait_closed()
        return service, responses

    service, responses = asyncio.run(scenario())
    adjacency = artifacts_for(toy_kg).csr("both")
    for target, response in zip(targets, responses):  # in request order
        expected = ppr_top_k(adjacency, target, 16)
        assert response["result"] == [[node, score] for node, score in expected]
    # One connection's pipeline shared coalescing windows.
    assert service.metrics.batch_occupancy() > 1.0


def test_concurrent_wire_clients_coalesce(toy_kg, toy_task):
    targets = [int(t) for t in toy_task.target_nodes]

    async def scenario():
        service = ExtractionService(max_batch=len(targets), max_delay=0.02)
        service.register("toy", toy_kg)
        server = await serve_tcp(service, port=0)
        async with server:
            port = bound_port(server)
            responses = await asyncio.gather(
                *(
                    _roundtrip(port, [{"op": "ppr", "graph": "toy", "target": t}])
                    for t in targets
                )
            )
        return service, [r[0] for r in responses]

    service, responses = asyncio.run(scenario())
    adjacency = artifacts_for(toy_kg).csr("both")
    for target, response in zip(targets, responses):
        expected = ppr_top_k(adjacency, target, 16)
        assert response["result"] == [[node, score] for node, score in expected]
    # Independent connections still shared batches through the scheduler.
    assert service.metrics.batch_occupancy() > 1.0


def test_triples_ingest_over_the_wire_bumps_the_epoch(toy_kg):
    rows = [[0, 0, 1], [1, 0, 2]]
    responses = serve_and_send(
        toy_kg,
        [
            {"op": "triples", "graph": "toy", "triples": rows},
            {"op": "triples", "graph": "toy", "triples": [[toy_kg.num_nodes, 0, 0]]},
            {"op": "triples", "graph": "toy"},
            {"op": "ping"},
        ],
    )
    assert responses[0]["ok"]
    assert responses[0]["result"] == {
        "graph": "toy", "added": 2, "epoch": 1, "delta_rows": 2,
        "compacted": False,
    }
    # Id-minting payloads and missing fields answer structured errors
    # without closing the connection; the pipelined ping still lands.
    assert not responses[1]["ok"] and responses[1]["error"] == "bad_request"
    assert not responses[2]["ok"] and responses[2]["error"] == "bad_request"
    assert responses[3] == {"ok": True, "result": "pong"}
