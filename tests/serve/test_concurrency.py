"""Concurrency safety: the shared state the serving layer leans on.

Three contracts a concurrent service cannot live without:

* ``artifacts_for`` hands every thread the *same* artifacts and builds
  each one exactly once, no matter how many threads race the first call.
* ``EndpointStats`` counters never lose increments under parallel
  traffic (they are guarded by the endpoint lock).
* Coalesced batch extraction is bit-identical to per-request scalar
  extraction — concurrency must never change an answer.
"""

import asyncio
import threading

from repro.kg.cache import artifacts_for, clear_artifacts
from repro.sampling.ppr import ppr_top_k
from repro.serve import ExtractionService
from repro.sparql.endpoint import SparqlEndpoint

NUM_THREADS = 16


def hammer(num_threads, work):
    """Run ``work(index)`` on many threads through one start barrier."""
    barrier = threading.Barrier(num_threads)
    failures = []

    def runner(index):
        barrier.wait()
        try:
            work(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            failures.append(exc)

    threads = [
        threading.Thread(target=runner, args=(index,)) for index in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures


def test_artifacts_for_single_instance_under_races(toy_kg):
    clear_artifacts(toy_kg)
    seen = []

    def work(_index):
        seen.append(artifacts_for(toy_kg))

    hammer(NUM_THREADS, work)
    assert len({id(artifacts) for artifacts in seen}) == 1


def test_artifact_builds_happen_once_under_races(toy_kg):
    clear_artifacts(toy_kg)
    csrs, engines = [], []

    def work(_index):
        artifacts = artifacts_for(toy_kg)
        csrs.append(artifacts.csr("both"))
        engines.append(artifacts.walk_engine("both"))

    hammer(NUM_THREADS, work)
    assert len({id(matrix) for matrix in csrs}) == 1
    assert len({id(engine) for engine in engines}) == 1
    artifacts = artifacts_for(toy_kg)
    # One CSR build + one engine build; every other getter call was a hit
    # (engine construction itself reads the cached CSR, hence >=).
    assert artifacts.builds == 2
    assert artifacts.hits >= 2 * NUM_THREADS - 2


def test_endpoint_stats_counters_never_lose_increments(toy_kg):
    endpoint = SparqlEndpoint(toy_kg)
    queries_per_thread = 8
    query = "select ?s ?p ?o where { ?s ?p ?o }"

    def work(_index):
        for _ in range(queries_per_thread):
            endpoint.query(query)

    hammer(NUM_THREADS, work)
    total = NUM_THREADS * queries_per_thread
    assert endpoint.stats.requests == total
    assert endpoint.stats.rows_returned == total * toy_kg.num_edges
    single = SparqlEndpoint(toy_kg)
    single.query(query)
    assert endpoint.stats.bytes_raw == total * single.stats.bytes_raw


def test_coalesced_results_bit_identical_to_scalar(toy_kg, toy_task):
    """64 concurrent in-flight extractions == 64 lone scalar extractions."""
    targets = [int(t) for t in toy_task.target_nodes] * 11  # 66 requests
    service = ExtractionService(max_pending=128, max_batch=32, max_delay=0.002)
    service.register("toy", toy_kg)

    async def scenario():
        return await asyncio.gather(
            *(service.ppr_top_k("toy", target) for target in targets)
        )

    results = asyncio.run(scenario())
    adjacency = artifacts_for(toy_kg).csr("both")
    oracle = {target: ppr_top_k(adjacency, target, 16) for target in set(targets)}
    for target, result in zip(targets, results):
        assert result == oracle[target]
    # The equivalence is only meaningful if coalescing actually kicked in.
    assert service.metrics.batch_occupancy() > 1.0
