"""Multi-process worker pool: shard map, bit-identity, crash containment.

The pool's contract (``repro/serve/pool.py``) in test form:

* the graph→shard map is deterministic — across calls, threads and
  *processes* — so artifacts are built exactly once per owning worker;
* pooled extraction is bit-identical to in-process extraction on a real
  catalog graph (``mag small``);
* a crashed worker fails only its in-flight requests, each with a
  structured :class:`WorkerCrashed`, and the slot respawns with its
  registrations replayed;
* worker-side client errors re-raise as the same exception type in the
  parent, so both serving modes map to identical wire errors.
"""

import asyncio
import os
import signal
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.kg.cache import artifacts_for
from repro.models.shadowsaint import extract_ego
from repro.sampling.ppr import ppr_top_k
from repro.serve import ExtractionService, WorkerCrashed, WorkerPool
from repro.serve.pool import replica_shards, shard_for
from repro.sparql.parser import SparqlSyntaxError


def run(coroutine):
    return asyncio.run(coroutine)


# -- the deterministic graph -> shard map -------------------------------------


def test_shard_map_is_deterministic_and_in_range():
    names = [f"graph-{i}" for i in range(64)] + ["mag", "dblp", "yago4"]
    for shards in (1, 2, 3, 7):
        for name in names:
            home = shard_for(name, shards)
            assert 0 <= home < shards
            assert home == shard_for(name, shards)
    # The map must spread graphs, not collapse onto one shard.
    assert len({shard_for(name, 7) for name in names}) > 1
    with pytest.raises(ValueError):
        shard_for("mag", 0)


def test_replica_shards_walk_from_the_home_shard():
    home = shard_for("mag", 4)
    assert replica_shards("mag", 4, replicas=1) == [home]
    assert replica_shards("mag", 4, replicas=2) == [home, (home + 1) % 4]
    # None and over-large replica counts mean "every worker".
    assert sorted(replica_shards("mag", 4)) == [0, 1, 2, 3]
    assert sorted(replica_shards("mag", 4, replicas=99)) == [0, 1, 2, 3]
    # Shrinking replicas never moves the home shard (pinning stability).
    for replicas in (1, 2, 3, 4):
        assert replica_shards("mag", 4, replicas)[0] == home


def test_shard_map_is_stable_across_processes():
    """Placement must not depend on per-process hash seeds."""
    names = ["mag", "dblp", "yago4", "wikikg2", "load", "graph-17"]
    script = (
        "from repro.serve.pool import shard_for\n"
        "print([shard_for(n, 5) for n in %r])" % (names,)
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "12345"  # a different seed must change nothing
    output = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True,
        check=True,
    ).stdout.strip()
    assert output == str([shard_for(name, 5) for name in names])


def test_shard_map_thread_hammer():
    """Concurrent placement lookups all agree with the serial reference."""
    names = [f"graph-{i}" for i in range(200)]
    reference = {
        name: (shard_for(name, 8), tuple(replica_shards(name, 8, 3)))
        for name in names
    }
    mismatches = []
    barrier = threading.Barrier(8)

    def hammer():
        barrier.wait()
        for _ in range(20):
            for name in names:
                observed = (shard_for(name, 8), tuple(replica_shards(name, 8, 3)))
                if observed != reference[name]:
                    mismatches.append((name, observed))

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert mismatches == []


def test_concurrent_registration_respects_the_shard_map(toy_kg):
    """Racing registrations still land every graph on its mapped shards."""
    with WorkerPool(workers=2, replicas=1) as pool:
        names = [f"g{i}" for i in range(12)]
        errors = []

        def register(name):
            try:
                pool.register(name, toy_kg, warm=False)
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append((name, exc))

        threads = [threading.Thread(target=register, args=(name,)) for name in names]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        for name in names:
            assert pool.shards_of(name) == replica_shards(name, 2, 1)


# -- bit-identity with in-process extraction ----------------------------------


@pytest.fixture(scope="module")
def mag_small_bundle():
    from repro.datasets import mag

    return mag("small", seed=7)


def test_pooled_extraction_bit_identical_on_mag_small(mag_small_bundle):
    """PPR, ego and SPARQL answers must not depend on the serving mode."""
    kg = mag_small_bundle.kg
    task = mag_small_bundle.task("PV")
    rng = np.random.default_rng(7)
    targets = [int(t) for t in rng.choice(task.target_nodes, size=24, replace=False)]
    query = "select ?s ?p ?o where { ?s ?p ?o } limit 64"

    async def drive(service):
        pprs = await asyncio.gather(
            *(service.ppr_top_k("mag", t, k=8) for t in targets)
        )
        egos = await asyncio.gather(
            *(service.extract_ego("mag", t, depth=2, fanout=4, salt=3) for t in targets)
        )
        rows = await service.sparql("mag", query)
        count = await service.count("mag", query)
        stream = await service.sparql_stream("mag", query, page_rows=10)
        pages = list(stream.pages)
        return pprs, egos, rows, count, stream.total_rows, pages

    with WorkerPool(workers=2) as pool:
        pooled = ExtractionService(max_batch=8, pool=pool)
        pooled.register("mag", kg)
        pool_pprs, pool_egos, pool_rows, pool_count, pool_total, pool_pages = run(
            drive(pooled)
        )

    local = ExtractionService(max_batch=8)
    local.register("mag", kg)
    loc_pprs, loc_egos, loc_rows, loc_count, loc_total, loc_pages = run(drive(local))

    assert pool_pprs == loc_pprs
    for pool_ego, local_ego in zip(pool_egos, loc_egos):
        np.testing.assert_array_equal(pool_ego.nodes, local_ego.nodes)
        np.testing.assert_array_equal(pool_ego.src, local_ego.src)
        np.testing.assert_array_equal(pool_ego.dst, local_ego.dst)
        np.testing.assert_array_equal(pool_ego.rel, local_ego.rel)
    assert pool_rows.variables == loc_rows.variables
    for variable in loc_rows.variables:
        np.testing.assert_array_equal(
            pool_rows.columns[variable], loc_rows.columns[variable]
        )
    assert pool_count == loc_count
    assert pool_total == loc_total
    assert [page.num_rows for page in pool_pages] == [
        page.num_rows for page in loc_pages
    ]

    # And both match the scalar oracles directly.
    adjacency = artifacts_for(kg).csr("both")
    assert pool_pprs[0] == ppr_top_k(adjacency, targets[0], 8)
    oracle = extract_ego(kg, targets[0], depth=2, fanout=4, salt=3)
    np.testing.assert_array_equal(pool_egos[0].nodes, oracle.nodes)


def test_parent_process_builds_no_kernel_artifacts(toy_kg):
    """In pool mode the artifact cache is worker-local: the parent stays cold."""
    with WorkerPool(workers=1) as pool:
        service = ExtractionService(pool=pool)
        service.register("toy", toy_kg)
        assert artifacts_for(toy_kg).builds == 0
        run(service.ppr_top_k("toy", 0, k=4))
        assert artifacts_for(toy_kg).builds == 0
        snapshot = service.metrics_snapshot()
        assert snapshot["graphs"]["toy"]["artifact_cache"]["builds"] >= 1
        assert snapshot["graphs"]["toy"]["shards"] == pool.shards_of("toy")
        assert snapshot["config"]["pool"]["workers"] == 1


# -- crash containment and respawn --------------------------------------------


def test_worker_crash_is_a_structured_error_and_the_slot_respawns(toy_kg):
    with WorkerPool(workers=2) as pool:
        service = ExtractionService(pool=pool)
        service.register("toy", toy_kg)
        before = run(service.ppr_top_k("toy", 0, k=4))
        builds_before = pool.graph_stats("toy")["artifact_cache"]["builds"]

        victim = pool.shards_of("toy")[0]
        handle = pool._workers[victim]
        inflight = handle.request("sleep", {"seconds": 60})
        os.kill(pool.worker_pids()[victim], signal.SIGKILL)

        with pytest.raises(WorkerCrashed, match="died with this request in flight"):
            inflight.result(timeout=30)

        # The slot respawned, replayed its registrations, and serves again
        # with bit-identical answers.
        assert pool.ping(victim) == "pong"
        description = pool.describe()
        assert description["respawns"] == 1
        assert description["spawn_failures"] == [None, None]
        after = run(service.ppr_top_k("toy", 0, k=4))
        assert after == before
        # Cumulative counters survive the respawn: the dead incarnation's
        # builds are retired, not dropped, so /metrics never steps back.
        assert pool.graph_stats("toy")["artifact_cache"]["builds"] >= builds_before


def test_requests_to_unregistered_pool_graphs_fail_fast(toy_kg):
    with WorkerPool(workers=1) as pool:
        with pytest.raises(KeyError):
            pool.call("ppr", {"graph": "nope", "targets": [0], "k": 4,
                              "alpha": 0.25, "eps": 2e-4})
        pool.register("toy", toy_kg, warm=False)
        with pytest.raises(KeyError):
            pool.shards_of("nope")


def test_pool_registration_is_idempotent_but_rejects_conflicts(toy_kg, mag_tiny):
    with WorkerPool(workers=2, replicas=99) as pool:
        # An over-large replica request is clamped up front, so placement,
        # the banner and describe()/metrics all agree.
        assert pool.replicas == 2
        assert pool.describe()["replicas"] == 2
        first = pool.register("toy", toy_kg)
        assert pool.register("toy", toy_kg) == first
        with pytest.raises(ValueError, match="different graph"):
            pool.register("toy", mag_tiny.kg)


def test_pool_mode_requires_coalescing():
    with pytest.raises(ValueError, match="coalesce"):
        ExtractionService(coalesce=False, pool=object())


def test_worker_side_client_errors_keep_their_type(toy_kg):
    """ValueError / SPARQL syntax errors cross the process boundary intact,
    so the front ends' 400 mapping is identical in both serving modes."""
    with WorkerPool(workers=1) as pool:
        service = ExtractionService(pool=pool)
        service.register("toy", toy_kg)
        with pytest.raises(ValueError, match="alpha"):
            run(service.ppr_top_k("toy", 0, k=4, alpha=7.0))
        with pytest.raises(SparqlSyntaxError):
            run(service.sparql("toy", "this is not sparql"))


def test_closed_pool_rejects_requests(toy_kg):
    pool = WorkerPool(workers=1)
    pool.register("toy", toy_kg, warm=False)
    pool.close()
    with pytest.raises(WorkerCrashed):
        pool.call("ppr", {"graph": "toy", "targets": [0], "k": 4,
                          "alpha": 0.25, "eps": 2e-4})


# -- zero-copy (mmap) registration --------------------------------------------


@pytest.fixture(scope="module")
def mag_small_store(mag_small_bundle, tmp_path_factory):
    from repro.kg.store import save_artifacts

    directory = str(tmp_path_factory.mktemp("mag-store"))
    save_artifacts(mag_small_bundle.kg, directory)
    return directory


@pytest.fixture
def toy_store(toy_kg, tmp_path):
    from repro.kg.store import save_artifacts

    save_artifacts(toy_kg, str(tmp_path))
    return str(tmp_path)


def test_mmap_registration_ships_a_path_not_a_graph(toy_kg, toy_store):
    from repro.kg.store import open_artifacts

    with WorkerPool(workers=1) as pool:
        pool.register("toy", open_artifacts(toy_store).kg, mmap_dir=toy_store)
        (payload,) = pool._registrations_for(0)
        assert payload["mmap_dir"] == toy_store
        assert "kg" not in payload
        # Plain registrations still ship the graph itself.
        pool.register("plain", toy_kg)
        payloads = {p["name"]: p for p in pool._registrations_for(0)}
        assert "kg" in payloads["plain"] and "mmap_dir" not in payloads["plain"]


def test_mmap_pooled_extraction_bit_identical_on_mag_small(
    mag_small_bundle, mag_small_store
):
    """Cold-start from the artifact store answers exactly like in-process."""
    from repro.kg.store import open_artifacts

    kg = mag_small_bundle.kg
    task = mag_small_bundle.task("PV")
    rng = np.random.default_rng(7)
    targets = [int(t) for t in rng.choice(task.target_nodes, size=12, replace=False)]
    query = "select ?s ?p ?o where { ?s ?p ?o } limit 64"

    async def drive(service):
        pprs = await asyncio.gather(
            *(service.ppr_top_k("mag", t, k=8) for t in targets)
        )
        egos = await asyncio.gather(
            *(service.extract_ego("mag", t, depth=2, fanout=4, salt=3) for t in targets)
        )
        rows = await service.sparql("mag", query)
        count = await service.count("mag", query)
        return pprs, egos, rows, count

    with WorkerPool(workers=2) as pool:
        pooled = ExtractionService(max_batch=8, pool=pool)
        pooled.register("mag", open_artifacts(mag_small_store).kg,
                        mmap_dir=mag_small_store)
        pool_pprs, pool_egos, pool_rows, pool_count = run(drive(pooled))
        snapshot = pooled.metrics_snapshot()

    local = ExtractionService(max_batch=8)
    local.register("mag", kg)
    loc_pprs, loc_egos, loc_rows, loc_count = run(drive(local))

    assert pool_pprs == loc_pprs
    for pool_ego, local_ego in zip(pool_egos, loc_egos):
        np.testing.assert_array_equal(pool_ego.nodes, local_ego.nodes)
        np.testing.assert_array_equal(pool_ego.src, local_ego.src)
        np.testing.assert_array_equal(pool_ego.dst, local_ego.dst)
        np.testing.assert_array_equal(pool_ego.rel, local_ego.rel)
    assert pool_rows.variables == loc_rows.variables
    for variable in loc_rows.variables:
        np.testing.assert_array_equal(
            pool_rows.columns[variable], loc_rows.columns[variable]
        )
    assert pool_count == loc_count
    # Workers really served off the mapping: mapped bytes, no CSR builds.
    cache = snapshot["graphs"]["mag"]["artifact_cache"]
    assert cache["mapped_nbytes"] > 0
    assert cache["hits"] >= 1


def test_mmap_respawn_replays_the_store_path(toy_store):
    from repro.kg.store import open_artifacts

    with WorkerPool(workers=1) as pool:
        service = ExtractionService(pool=pool)
        service.register("toy", open_artifacts(toy_store).kg, mmap_dir=toy_store)
        before = run(service.ppr_top_k("toy", 0, k=4))

        inflight = pool._workers[0].request("sleep", {"seconds": 60})
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
        with pytest.raises(WorkerCrashed):
            inflight.result(timeout=30)

        # The respawned slot re-mapped the same file and answers identically.
        assert pool.ping(0) == "pong"
        assert run(service.ppr_top_k("toy", 0, k=4)) == before
        assert pool.graph_stats("toy")["artifact_cache"]["mapped_nbytes"] > 0


def test_mapped_bytes_merge_with_max_not_sum(toy_store):
    """N workers mapping one file share its pages: /metrics must not bill
    the store once per worker."""
    from repro.kg.store import open_artifacts

    def merged_mapped(workers):
        with WorkerPool(workers=workers) as pool:
            pool.register("toy", open_artifacts(toy_store).kg, mmap_dir=toy_store)
            pool.call("ppr", {"graph": "toy", "targets": [0], "k": 4,
                              "alpha": 0.25, "eps": 2e-4})
            return pool.graph_stats("toy")["artifact_cache"]["mapped_nbytes"]

    single = merged_mapped(1)
    assert single > 0
    assert merged_mapped(2) == single


# -- worker CPU pinning -------------------------------------------------------


@pytest.mark.skipif(
    not hasattr(os, "sched_setaffinity"), reason="no sched_setaffinity here"
)
def test_pinned_workers_land_on_parent_affinity_cpus(toy_kg):
    cpus = sorted(os.sched_getaffinity(0))
    with WorkerPool(workers=2, pin_workers=True) as pool:
        pinned = pool.describe()["pinned"]
        assert pinned == [cpus[0 % len(cpus)], cpus[1 % len(cpus)]]
        for index, cpu in enumerate(pinned):
            assert os.sched_getaffinity(pool.worker_pids()[index]) == {cpu}
        # Pinning survives a respawn (the new incarnation is re-pinned).
        inflight = pool._workers[0].request("sleep", {"seconds": 60})
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
        with pytest.raises(WorkerCrashed):
            inflight.result(timeout=30)
        assert pool.ping(0) == "pong"
        assert pool.describe()["pinned"][0] == pinned[0]
        assert os.sched_getaffinity(pool.worker_pids()[0]) == {pinned[0]}


def test_unpinned_pool_reports_no_cpus(toy_kg):
    with WorkerPool(workers=2) as pool:
        assert pool.describe()["pinned"] == [None, None]
