"""HTTP/SPARQL-protocol front end: endpoints, streaming, backpressure."""

import asyncio
import json
from urllib.parse import quote, urlencode

import numpy as np

from repro.kg.cache import artifacts_for
from repro.models.shadowsaint import extract_ego
from repro.sampling.ppr import ppr_top_k
from repro.serve import (
    ExtractionService,
    bound_port,
    run_http_load,
    run_load,
    serve_http,
)
from repro.sparql.endpoint import SparqlEndpoint

from repro.serve.loadgen import read_http_response as _read_response

ALL_TRIPLES = "select ?s ?p ?o where { ?s ?p ?o }"


async def _request(reader, writer, method, target, body=None, headers=()):
    lines = [f"{method} {target} HTTP/1.1", "Host: test"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    payload = b"" if body is None else body
    if body is not None:
        lines.append(f"Content-Length: {len(payload)}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload)
    await writer.drain()
    return await _read_response(reader)


def serve_and_call(kg, calls, **service_kwargs):
    """Start an HTTP server over ``kg``; run ``calls(reader, writer)``."""

    async def scenario():
        service = ExtractionService(**service_kwargs)
        service.register("toy", kg)
        server = await serve_http(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            try:
                return await calls(reader, writer), service
            finally:
                writer.close()
                await writer.wait_closed()

    return asyncio.run(scenario())


def test_ping_graphs_and_metrics(toy_kg):
    async def calls(reader, writer):
        return [
            await _request(reader, writer, "GET", path)
            for path in ("/ping", "/graphs", "/metrics")
        ]

    responses, _service = serve_and_call(toy_kg, calls)
    statuses = [status for status, _h, _b, _c in responses]
    assert statuses == [200, 200, 200]
    assert json.loads(responses[0][2]) == "pong"
    assert json.loads(responses[1][2]) == ["toy"]
    metrics = json.loads(responses[2][2])
    assert "admission" in metrics and "coalescing" in metrics
    for _status, headers, _body, _chunks in responses:
        assert headers["content-type"] == "application/json"


def test_sparql_get_returns_valid_results_json(toy_kg):
    async def calls(reader, writer):
        return await _request(
            reader, writer, "GET", f"/sparql?query={quote(ALL_TRIPLES)}"
        )

    (status, headers, body, _chunks), _service = serve_and_call(toy_kg, calls)
    assert status == 200
    assert headers["content-type"] == "application/sparql-results+json"
    assert headers["transfer-encoding"] == "chunked"
    payload = json.loads(body)
    assert payload["head"]["vars"] == ["s", "p", "o"]
    bindings = payload["results"]["bindings"]
    assert len(bindings) == toy_kg.num_edges
    # Every binding value is a typed integer literal indexing the vocab.
    first = bindings[0]["s"]
    assert first["type"] == "literal"
    assert first["datatype"].endswith("#integer")
    int(first["value"])


def test_sparql_post_bodies(toy_kg):
    query = ALL_TRIPLES + " limit 4"

    async def calls(reader, writer):
        urlencoded = await _request(
            reader, writer, "POST", "/sparql",
            body=urlencode({"query": query}).encode(),
            headers=[("Content-Type", "application/x-www-form-urlencoded")],
        )
        direct = await _request(
            reader, writer, "POST", "/sparql",
            body=query.encode(),
            headers=[("Content-Type", "application/sparql-query")],
        )
        return urlencoded, direct

    (urlencoded, direct), _service = serve_and_call(toy_kg, calls)
    for status, _headers, body, _chunks in (urlencoded, direct):
        assert status == 200
        assert len(json.loads(body)["results"]["bindings"]) == 4


def test_streamed_pages_concatenate_to_the_unpaged_result(toy_kg):
    """Chunked pages, concatenated, must be bit-exact with one-shot reads."""

    async def calls(reader, writer):
        paged = await _request(
            reader, writer, "GET", f"/sparql?query={quote(ALL_TRIPLES)}&page_rows=3"
        )
        unpaged = await _request(
            reader, writer, "GET",
            f"/sparql?query={quote(ALL_TRIPLES)}&page_rows=1000000",
        )
        return paged, unpaged

    (paged, unpaged), _service = serve_and_call(toy_kg, calls)
    assert paged[0] == unpaged[0] == 200
    # page_rows=3 over 13 rows -> head + 5 page chunks + tail.
    expected_pages = -(-toy_kg.num_edges // 3)
    assert paged[3] == expected_pages + 2
    assert unpaged[3] == 1 + 2
    assert json.loads(paged[2]) == json.loads(unpaged[2])
    # And both match the in-process endpoint, value for value.
    result = SparqlEndpoint(toy_kg).query(ALL_TRIPLES)
    bindings = json.loads(paged[2])["results"]["bindings"]
    for variable in result.variables:
        assert [int(b[variable]["value"]) for b in bindings] == (
            result.columns[variable].tolist()
        )


def test_empty_result_streams_valid_json(toy_kg):
    query = "select ?s ?o where { ?s <noSuchRelation> ?o }"

    async def calls(reader, writer):
        return await _request(reader, writer, "GET", f"/sparql?query={quote(query)}")

    (status, _headers, body, _chunks), _service = serve_and_call(toy_kg, calls)
    assert status == 200
    assert json.loads(body) == {
        "head": {"vars": ["s", "o"]},
        "results": {"bindings": []},
    }


def test_ppr_and_ego_match_oracles(toy_kg, toy_task):
    target = int(toy_task.target_nodes[0])
    root = int(toy_task.target_nodes[1])

    async def calls(reader, writer):
        ppr = await _request(
            reader, writer, "GET", f"/ppr?graph=toy&target={target}&k=8"
        )
        ego = await _request(
            reader, writer, "POST", "/ego",
            body=json.dumps(
                {"graph": "toy", "root": root, "depth": 2, "fanout": 3, "salt": 9}
            ).encode(),
            headers=[("Content-Type", "application/json")],
        )
        return ppr, ego

    (ppr, ego), _service = serve_and_call(toy_kg, calls)
    assert ppr[0] == ego[0] == 200
    expected_ppr = ppr_top_k(artifacts_for(toy_kg).csr("both"), target, 8)
    assert json.loads(ppr[2]) == [[node, score] for node, score in expected_ppr]
    expected_ego = extract_ego(toy_kg, root, depth=2, fanout=3, salt=9)
    payload = json.loads(ego[2])
    assert payload["nodes"] == [int(v) for v in expected_ego.nodes]
    assert payload["rel"] == [int(v) for v in expected_ego.rel]


def test_error_statuses(toy_kg):
    cases = [
        ("GET", "/sparql", 400, "bad_request"),  # missing query
        ("GET", "/sparql?query=borked", 400, "bad_request"),  # syntax error
        ("GET", "/sparql?query=" + quote(ALL_TRIPLES) + "&graph=nope",
         404, "unknown_graph"),
        ("GET", "/sparql?query=" + quote(ALL_TRIPLES) + "&page_rows=0",
         400, "bad_request"),
        ("GET", "/ppr?graph=toy", 400, "bad_request"),  # missing target
        ("GET", "/ppr?graph=nope&target=0", 404, "unknown_graph"),
        ("GET", "/nope", 404, "not_found"),
        ("POST", "/metrics", 405, "method_not_allowed"),
    ]

    async def calls(reader, writer):
        responses = []
        for method, target, _status, _error in cases:
            responses.append(await _request(reader, writer, method, target))
        # The connection survives every error response.
        responses.append(await _request(reader, writer, "GET", "/ping"))
        return responses

    responses, _service = serve_and_call(toy_kg, calls)
    for (status, _headers, body, _chunks), (_m, _t, want_status, want_error) in zip(
        responses, cases
    ):
        assert status == want_status
        assert json.loads(body)["error"] == want_error
    assert responses[-1][0] == 200


def test_out_of_range_kernel_parameters_answer_400(toy_kg, toy_task):
    """Kernel ValueErrors (alpha/eps/k bounds) are client errors, not 500s."""
    target = int(toy_task.target_nodes[0])

    async def calls(reader, writer):
        return await _request(
            reader, writer, "GET", f"/ppr?graph=toy&target={target}&alpha=5"
        )

    (status, _headers, body, _chunks), _service = serve_and_call(toy_kg, calls)
    assert status == 400
    assert json.loads(body)["error"] == "bad_request"


def test_sparql_without_registered_graphs_answers_404():
    async def scenario():
        service = ExtractionService()  # nothing registered
        server = await serve_http(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            try:
                return await _request(
                    reader, writer, "GET", f"/sparql?query={quote(ALL_TRIPLES)}"
                )
            finally:
                writer.close()
                await writer.wait_closed()

    status, _headers, body, _chunks = asyncio.run(scenario())
    assert status == 404
    assert json.loads(body) == {
        "error": "unknown_graph",
        "detail": "no graphs are registered",
    }


def test_negative_limit_is_rejected_over_http(toy_kg):
    query = ALL_TRIPLES + " limit -1"

    async def calls(reader, writer):
        return await _request(reader, writer, "GET", f"/sparql?query={quote(query)}")

    (status, _headers, body, _chunks), _service = serve_and_call(toy_kg, calls)
    assert status == 400
    assert "non-negative" in json.loads(body)["detail"]


def test_overload_maps_to_503_with_retry_after(toy_kg, toy_task):
    target = int(toy_task.target_nodes[0])

    async def scenario():
        # A window that never closes on its own: the first request parks
        # in flight until admission starts shedding.
        service = ExtractionService(max_pending=1, max_batch=1000, max_delay=60.0)
        service.register("toy", toy_kg)
        server = await serve_http(service, port=0)
        async with server:
            port = bound_port(server)
            r1, w1 = await asyncio.open_connection("127.0.0.1", port)
            w1.write(
                f"GET /ppr?graph=toy&target={target} HTTP/1.1\r\n"
                "Host: test\r\n\r\n".encode()
            )
            await w1.drain()
            await asyncio.sleep(0.05)  # let it get admitted and parked
            r2, w2 = await asyncio.open_connection("127.0.0.1", port)
            shed = await _request(r2, w2, "GET", f"/ppr?graph=toy&target={target}")
            await service.drain()
            first = await _read_response(r1)
            for w in (w1, w2):
                w.close()
                await w.wait_closed()
            return shed, first

    shed, first = asyncio.run(scenario())
    status, headers, body, _chunks = shed
    assert status == 503
    payload = json.loads(body)
    assert payload["error"] == "overloaded"
    assert payload["retry_after"] > 0
    # RFC 9110 Retry-After: whole seconds, at least 1.
    assert int(headers["retry-after"]) >= 1
    assert first[0] == 200  # the parked request completed after the drain


def test_connection_close_is_honored(toy_kg):
    async def calls(reader, writer):
        status, headers, _body, _chunks = await _request(
            reader, writer, "GET", "/ping", headers=[("Connection", "close")]
        )
        eof = await reader.read()
        return status, headers, eof

    (status, headers, eof), _service = serve_and_call(toy_kg, calls)
    assert status == 200
    assert headers.get("connection") == "close"
    assert eof == b""


def test_pipelined_http_requests_coalesce(toy_kg, toy_task):
    """All requests written up front share coalescing windows, in order."""
    targets = [int(t) for t in toy_task.target_nodes]

    async def calls(reader, writer):
        for target in targets:
            writer.write(
                f"GET /ppr?graph=toy&target={target} HTTP/1.1\r\n"
                "Host: test\r\n\r\n".encode()
            )
        await writer.drain()
        return [await _read_response(reader) for _ in targets]

    responses, service = serve_and_call(
        toy_kg, calls, max_batch=len(targets), max_delay=0.02
    )
    adjacency = artifacts_for(toy_kg).csr("both")
    for target, (status, _headers, body, _chunks) in zip(targets, responses):
        assert status == 200
        expected = ppr_top_k(adjacency, target, 16)
        assert json.loads(body) == [[node, score] for node, score in expected]
    assert service.metrics.batch_occupancy() > 1.0


def test_http_loadgen_matches_serial_baseline(toy_kg, toy_task):
    """The closed loop over HTTP is bit-identical to in-process serial."""
    rng = np.random.default_rng(3)
    targets = rng.choice(toy_task.target_nodes, size=24, replace=True)
    serial = run_load(toy_kg, targets, k=8, concurrency=4, coalesce=False)
    over_http = run_http_load(toy_kg, targets, k=8, concurrency=4)
    assert over_http.mode == "http"
    assert over_http.requests == len(targets)
    assert over_http.results == serial.results
    assert over_http.rejected == 0


def test_negative_content_length_answers_400_and_closes(toy_kg):
    async def calls(reader, writer):
        writer.write(b"GET /ping HTTP/1.1\r\nContent-Length: -1\r\n\r\n")
        await writer.drain()
        response = await _read_response(reader)
        eof = await reader.read()
        return response, eof

    (response, eof), _service = serve_and_call(toy_kg, calls)
    assert response[0] == 400
    assert "Content-Length" in json.loads(response[2])["detail"]
    assert eof == b""


def test_unbounded_header_section_answers_400(toy_kg):
    async def calls(reader, writer):
        writer.write(b"GET /ping HTTP/1.1\r\n")
        for index in range(3000):  # ~66 KB of headers, never terminated
            writer.write(f"X-Flood-{index}: padding-padding\r\n".encode())
        await writer.drain()
        return await _read_response(reader)

    response, _service = serve_and_call(toy_kg, calls)
    assert response[0] == 400
    assert "header section" in json.loads(response[2])["detail"]


def test_json_body_cannot_override_the_route_op(toy_kg, toy_task):
    """POST /ppr with {"op": "metrics"} must still run ppr."""
    target = int(toy_task.target_nodes[0])

    async def calls(reader, writer):
        return await _request(
            reader, writer, "POST", "/ppr",
            body=json.dumps(
                {"op": "metrics", "graph": "toy", "target": target, "k": 8}
            ).encode(),
            headers=[("Content-Type", "application/json")],
        )

    (status, _headers, body, _chunks), _service = serve_and_call(toy_kg, calls)
    assert status == 200
    expected = ppr_top_k(artifacts_for(toy_kg).csr("both"), target, 8)
    assert json.loads(body) == [[node, score] for node, score in expected]


def test_eof_mid_headers_drops_without_dispatch(toy_kg):
    async def scenario():
        service = ExtractionService()
        service.register("toy", toy_kg)
        server = await serve_http(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            writer.write(b"GET /ppr?graph=toy&target=0 HTTP/1.1\r\n")
            await writer.drain()
            writer.close()  # die before the terminating blank line
            await writer.wait_closed()
            await asyncio.sleep(0.05)
        return service

    service = asyncio.run(scenario())
    assert service.metrics.accepted == 0  # the truncated request never ran


def test_malformed_request_line_answers_400_and_closes(toy_kg):
    async def calls(reader, writer):
        writer.write(b"NOT-HTTP\r\n\r\n")
        await writer.drain()
        response = await _read_response(reader)
        eof = await reader.read()
        return response, eof

    (response, eof), _service = serve_and_call(toy_kg, calls)
    assert response[0] == 400
    assert eof == b""
