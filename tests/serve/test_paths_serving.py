"""/paths serving: bit-identity, failure injection, cache invalidation.

The path-extraction workload's serving contract in test form:

* ``/paths`` answers are **bit-identical** to the scalar DFS oracle in
  every serving mode — in-process coalesced, in-process serial, local
  worker pool, remote-TCP worker pool — and over both wire front ends
  (HTTP and ndjson-TCP);
* a worker killed with a ``/paths`` request in flight fails that request
  with a structured :class:`WorkerCrashed`, and the respawned slot
  re-answers the same request identically;
* overload sheds ``/paths`` with 503 + a kind-aware Retry-After (floored
  at the coalescing window, like every coalesced kind);
* an epoch ingest invalidates only the path-cache entries whose support
  sets touch the delta — disjoint entries survive and keep hitting;
* out-of-range kernel parameters on ``paths``/``ppr``/``ego`` map to a
  structured 400 ``bad_request`` on both front ends (the clamp gap).
"""

import asyncio
import json
import os
import signal
import threading

import pytest

from repro.kg.store import open_artifacts, save_artifacts
from repro.sampling.paths import enumerate_paths_scalar
from repro.serve import (
    ExtractionService,
    WorkerCrashed,
    WorkerPool,
    bound_port,
    serve_http,
    serve_tcp,
)
from repro.serve.loadgen import read_http_response
from repro.serve.transport import WorkerServer, serve_worker


def run(coroutine):
    return asyncio.run(coroutine)


def _n(kg, label):
    return kg.node_vocab.id(label)


def _oracle(kg, src, dst, max_hops=3, max_paths=64):
    return enumerate_paths_scalar(kg, src, dst, max_hops=max_hops, max_paths=max_paths)


# Pairs spanning the toy graph's interesting shapes: a direct edge, two
# 2-hop cites->hasAuthor chains, the disconnected movie domain, a pair
# with no directed path at all.
PAIR_LABELS = [
    ("p0", "a0"),  # 1 hop: hasAuthor
    ("p0", "a1"),  # 2 hops: cites p2, hasAuthor a1
    ("p3", "a0"),  # 2 hops: cites p1, hasAuthor a0
    ("m0", "m1"),  # 1 hop in the disconnected movie domain
    ("a0", "p0"),  # no directed path (authors have no out-edges)
]


@pytest.fixture
def toy_store(toy_kg, tmp_path):
    save_artifacts(toy_kg, str(tmp_path))
    return str(tmp_path)


class _WorkerThread:
    """One ndjson worker server on a background event loop."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self.server = WorkerServer()
        self.tcp = asyncio.run_coroutine_threadsafe(
            serve_worker(self.server), self.loop
        ).result(timeout=30)
        self.port = bound_port(self.tcp)

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.port}"

    def stop(self):
        async def _close():
            self.tcp.close()
            await self.tcp.wait_closed()

        asyncio.run_coroutine_threadsafe(_close(), self.loop).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


@pytest.fixture
def worker_thread():
    worker = _WorkerThread()
    yield worker
    worker.stop()


async def _request(reader, writer, method, target, body=None, headers=()):
    lines = [f"{method} {target} HTTP/1.1", "Host: test"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    payload = b"" if body is None else body
    if body is not None:
        lines.append(f"Content-Length: {len(payload)}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload)
    await writer.drain()
    return await read_http_response(reader)


def serve_and_call(kg, calls, **service_kwargs):
    async def scenario():
        service = ExtractionService(**service_kwargs)
        service.register("toy", kg)
        server = await serve_http(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            try:
                return await calls(reader, writer), service
            finally:
                writer.close()
                await writer.wait_closed()

    return asyncio.run(scenario())


def serve_and_send(kg, requests, **service_kwargs):
    async def scenario():
        service = ExtractionService(**service_kwargs)
        service.register("toy", kg)
        server = await serve_tcp(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            responses = []
            for request in requests:
                writer.write(json.dumps(request).encode() + b"\n")
                await writer.drain()
                responses.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            return responses

    return asyncio.run(scenario())


# -- bit-identity across every serving mode ------------------------------------


def test_paths_bit_identical_across_service_modes(toy_kg, toy_store, worker_thread):
    """In-process (coalesced + serial), local pool and remote-TCP pool all
    reproduce the scalar DFS oracle bit for bit."""
    pairs = [(_n(toy_kg, s), _n(toy_kg, d)) for s, d in PAIR_LABELS]
    oracle = [_oracle(toy_kg, s, d) for s, d in pairs]
    assert any(oracle) and not all(oracle)  # non-empty *and* empty answers

    async def drive(service):
        return list(
            await asyncio.gather(
                *(service.paths("toy", s, d, max_hops=3, max_paths=64)
                  for s, d in pairs)
            )
        )

    coalesced = ExtractionService(max_batch=8)
    coalesced.register("toy", toy_kg)
    assert run(drive(coalesced)) == oracle

    serial = ExtractionService(coalesce=False)
    serial.register("toy", toy_kg)
    assert run(drive(serial)) == oracle

    with WorkerPool(workers=2) as pool:
        pooled = ExtractionService(pool=pool)
        pooled.register("toy", toy_kg)
        assert run(drive(pooled)) == oracle

    with WorkerPool(workers=0, remote_workers=[worker_thread.address]) as pool:
        remote = ExtractionService(pool=pool)
        remote.register("toy", open_artifacts(toy_store).kg, mmap_dir=toy_store)
        assert run(drive(remote)) == oracle


def test_paths_over_http_wire_matches_oracle(toy_kg):
    src, dst = _n(toy_kg, "p0"), _n(toy_kg, "a1")
    expected = _oracle(toy_kg, src, dst, max_hops=3, max_paths=8)
    body = json.dumps(
        {"graph": "toy", "src": src, "dst": dst, "max_hops": 3, "max_paths": 8}
    ).encode()

    async def calls(reader, writer):
        posted = await _request(
            reader, writer, "POST", "/paths", body=body,
            headers=[("Content-Type", "application/json")],
        )
        got = await _request(
            reader, writer, "GET",
            f"/paths?graph=toy&src={src}&dst={dst}&max_hops=3&max_paths=8",
        )
        return posted, got

    (posted, got), _service = serve_and_call(toy_kg, calls)
    for status, headers, payload, _chunks in (posted, got):
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert json.loads(payload) == expected
    assert expected  # the pair must actually have paths


def test_paths_over_tcp_wire_matches_oracle(toy_kg):
    src, dst = _n(toy_kg, "p3"), _n(toy_kg, "a0")
    expected = _oracle(toy_kg, src, dst, max_hops=2, max_paths=16)
    [response] = serve_and_send(
        toy_kg,
        [{"op": "paths", "graph": "toy", "src": src, "dst": dst,
          "max_hops": 2, "max_paths": 16}],
    )
    assert response == {"ok": True, "result": expected}
    assert expected


# -- failure injection: worker death mid-/paths --------------------------------


def test_worker_killed_mid_paths_is_structured_and_respawn_reanswers(toy_kg):
    src, dst = _n(toy_kg, "p0"), _n(toy_kg, "a1")
    with WorkerPool(workers=2) as pool:
        service = ExtractionService(pool=pool)
        service.register("toy", toy_kg)
        before = run(service.paths("toy", src, dst, max_hops=3, max_paths=64))
        assert before == _oracle(toy_kg, src, dst)

        # Park the victim behind a sleep, then queue a paths request so the
        # kill lands with /paths work in flight on that worker.
        victim = pool.shards_of("toy")[0]
        handle = pool._workers[victim]
        parked = handle.request("sleep", {"seconds": 60})
        inflight = handle.request(
            "paths",
            {"graph": "toy", "pairs": [[src, dst]],
             "max_hops": 3, "max_paths": 64, "epoch": None},
        )
        os.kill(pool.worker_pids()[victim], signal.SIGKILL)

        with pytest.raises(WorkerCrashed, match="died with this request in flight"):
            parked.result(timeout=30)
        with pytest.raises(WorkerCrashed, match="died with this request in flight"):
            inflight.result(timeout=30)

        # The slot respawned with registrations replayed and the same
        # request answers bit-identically.
        assert pool.ping(victim) == "pong"
        assert pool.describe()["respawns"] == 1
        after = run(service.paths("toy", src, dst, max_hops=3, max_paths=64))
        assert after == before


# -- failure injection: overload -----------------------------------------------


def test_paths_overload_maps_to_503_with_retry_after(toy_kg):
    src, dst = _n(toy_kg, "p0"), _n(toy_kg, "a0")

    async def scenario():
        # A window that never closes on its own: the first request parks
        # in flight until admission starts shedding.
        service = ExtractionService(max_pending=1, max_batch=1000, max_delay=60.0)
        service.register("toy", toy_kg)
        server = await serve_http(service, port=0)
        async with server:
            port = bound_port(server)
            r1, w1 = await asyncio.open_connection("127.0.0.1", port)
            w1.write(
                f"GET /paths?graph=toy&src={src}&dst={dst} HTTP/1.1\r\n"
                "Host: test\r\n\r\n".encode()
            )
            await w1.drain()
            await asyncio.sleep(0.05)  # let it get admitted and parked
            r2, w2 = await asyncio.open_connection("127.0.0.1", port)
            shed = await _request(
                r2, w2, "GET", f"/paths?graph=toy&src={src}&dst={dst}"
            )
            await service.drain()
            first = await read_http_response(r1)
            for w in (w1, w2):
                w.close()
                await w.wait_closed()
            return shed, first

    shed, first = asyncio.run(scenario())
    status, headers, body, _chunks = shed
    assert status == 503
    payload = json.loads(body)
    assert payload["error"] == "overloaded"
    # paths is a coalesced kind: its Retry-After hint floors at one
    # coalescing window (60s here), not at a single service time.
    assert payload["retry_after"] >= 60.0
    assert int(headers["retry-after"]) >= 60
    # The parked request completed after the drain, bit-identically.
    assert first[0] == 200
    assert json.loads(first[2]) == _oracle(toy_kg, src, dst)


# -- epoch ingest: selective path-cache invalidation ---------------------------


def test_ingest_invalidates_only_dirtied_path_cache_entries(toy_kg):
    """An ingest touching the movie domain must not evict paper-domain
    path entries — and the surviving entry keeps serving cache hits."""
    paper = (_n(toy_kg, "p0"), _n(toy_kg, "a1"))
    movie = (_n(toy_kg, "m0"), _n(toy_kg, "m1"))
    sequel = toy_kg.relation_vocab.id("sequelOf")
    m0, m2, m3 = (_n(toy_kg, m) for m in ("m0", "m2", "m3"))

    async def scenario():
        service = ExtractionService(max_batch=8)
        service.register("toy", toy_kg)
        live = service._graph("toy").live

        paper_before = await service.paths("toy", *paper)
        movie_before = await service.paths("toy", *movie)
        assert live.stats()["paths_cache"]["entries"] == 2

        ingest = await service.ingest_triples("toy", [[m0, sequel, m2]])
        stats = live.stats()["paths_cache"]
        # Only the movie-domain entry's support set touches the delta.
        assert stats["invalidated"] == 1
        assert stats["entries"] == 1

        hits_before = stats["hits"]
        paper_after = await service.paths("toy", *paper)
        movie_after = await service.paths("toy", *movie)
        new_paths = await service.paths("toy", m0, m3)
        stats = live.stats()["paths_cache"]
        return (
            ingest, paper_before, movie_before, paper_after, movie_after,
            new_paths, stats["hits"] - hits_before, live.kg,
        )

    (ingest, paper_before, movie_before, paper_after, movie_after,
     new_paths, hit_delta, merged) = asyncio.run(scenario())
    assert ingest["added"] == 1 and ingest["epoch"] >= 1
    # The surviving paper entry answered from cache, bit-identically.
    assert hit_delta >= 1
    assert paper_after == paper_before
    # The dirtied movie entry was recomputed on the new epoch and still
    # matches the scalar oracle over the merged graph.
    assert movie_after == movie_before == _oracle(merged, *movie)
    # The ingested edge opened a new 2-hop path m0 -> m2 -> m3.
    assert new_paths == _oracle(merged, m0, m3)
    assert any(len(path) == 5 for path in new_paths)


# -- the clamp gap: non-positive kernel parameters -> structured 400 -----------


_CLAMP_CASES = [
    ("paths", {"src": "p0", "dst": "a0", "max_hops": 0}, "max_hops"),
    ("paths", {"src": "p0", "dst": "a0", "max_paths": -3}, "max_paths"),
    ("ppr", {"target": "p0", "k": 0}, "k"),
    ("ego", {"root": "p0", "depth": -1}, "depth"),
    ("ego", {"root": "p0", "fanout": 0}, "fanout"),
]


def _clamp_request(kg, op, fields):
    request = {"op": op, "graph": "toy"}
    for name, value in fields.items():
        request[name] = _n(kg, value) if isinstance(value, str) else value
    return request


@pytest.mark.parametrize("op,fields,param", _CLAMP_CASES)
def test_nonpositive_kernel_params_answer_400_over_http(toy_kg, op, fields, param):
    request = _clamp_request(toy_kg, op, fields)
    query = "&".join(f"{k}={v}" for k, v in request.items() if k != "op")

    async def calls(reader, writer):
        return await _request(reader, writer, "GET", f"/{op}?{query}")

    (status, _headers, body, _chunks), _service = serve_and_call(toy_kg, calls)
    assert status == 400
    payload = json.loads(body)
    assert payload["error"] == "bad_request"
    assert param in payload["detail"]


@pytest.mark.parametrize("op,fields,param", _CLAMP_CASES)
def test_nonpositive_kernel_params_answer_400_over_tcp(toy_kg, op, fields, param):
    [response] = serve_and_send(toy_kg, [_clamp_request(toy_kg, op, fields)])
    assert response["ok"] is False
    assert response["error"] == "bad_request"
    assert param in response["detail"]
