"""Live ingest through the serving layer: POST /triples end to end.

Satellite contract of the epochal-snapshot work (``docs/live-graphs.md``):
ingesting triples into a *running* service — in-process, on a 2-worker
pool, or over a real HTTP socket — bumps the graph's epoch without
restart, and every subsequent ``/sparql`` / ``/ppr`` / ``/ego`` answer
is bit-identical to a cold rebuild of the merged graph.  Also covered
here: CSV and SPARQL-results-XML content negotiation on ``/sparql``
(bit-exact vs the JSON bindings; the XML form additionally decodes ids
back to IRIs through the graph's vocabularies), pool-aware page
accounting in ``/metrics``, delta replay on
worker respawn, and compaction mid-traffic leaving in-flight streams on
their original epoch.
"""

import asyncio
import json
import os
import signal
from urllib.parse import quote

import numpy as np
import pytest

from repro.kg.cache import artifacts_for
from repro.models.shadowsaint import extract_ego_batch
from repro.sampling.ppr import batch_ppr_top_k
from repro.serve import ExtractionService, WorkerCrashed, WorkerPool, bound_port, serve_http
from repro.serve.loadgen import read_http_response
from repro.sparql.endpoint import SparqlEndpoint

ALL_TRIPLES = "select ?s ?p ?o where { ?s ?p ?o }"


def run(coroutine):
    return asyncio.run(coroutine)


def delta_rows(kg, rows, seed):
    rng = np.random.default_rng(seed)
    return np.stack(
        [
            rng.integers(0, kg.num_nodes, rows),
            rng.integers(0, kg.num_edge_types, rows),
            rng.integers(0, kg.num_nodes, rows),
        ],
        axis=1,
    ).astype(np.int64).tolist()


def assert_sparql_equal(result, expected):
    assert list(result.variables) == list(expected.variables)
    for variable in result.variables:
        assert np.array_equal(result.columns[variable], expected.columns[variable])


# -- in-process ---------------------------------------------------------------


def test_in_process_ingest_bumps_epoch_and_matches_cold_rebuild(toy_kg):
    async def scenario():
        service = ExtractionService()
        service.register("toy", toy_kg)
        await service.ppr_top_k("toy", 0, k=4)  # warm the caches pre-ingest

        result = await service.ingest_triples("toy", delta_rows(toy_kg, 8, seed=3))
        assert result["graph"] == "toy" and result["added"] == 8
        assert result["epoch"] == 1 and not result["compacted"]

        cold = service._graphs["toy"].live.epoch.cold_rebuild()
        ppr = await service.ppr_top_k("toy", 0, k=4)
        assert ppr == batch_ppr_top_k(artifacts_for(cold).csr("both"), [0], 4)[0]
        ego = await service.extract_ego("toy", 0, depth=2, fanout=3, salt=5)
        [expected] = extract_ego_batch(cold, [0], 2, 3, 5)
        assert np.array_equal(ego.nodes, expected.nodes)
        assert_sparql_equal(
            await service.sparql("toy", ALL_TRIPLES),
            SparqlEndpoint(cold).query(ALL_TRIPLES),
        )

        live = service.metrics_snapshot()["graphs"]["toy"]["live"]
        assert live["epoch"] == 1 and live["delta_rows"] == 8
        assert live["ingested_triples"] == 8
        await service.drain()

    run(scenario())


def test_ingest_rejects_id_minting_payloads_without_advancing(toy_kg):
    async def scenario():
        service = ExtractionService()
        service.register("toy", toy_kg)
        with pytest.raises(ValueError, match="does not mint new nodes"):
            await service.ingest_triples("toy", [[toy_kg.num_nodes, 0, 0]])
        empty = await service.ingest_triples("toy", [])
        assert empty["added"] == 0 and empty["epoch"] == 0
        await service.drain()

    run(scenario())


def test_compaction_mid_traffic_leaves_inflight_stream_on_its_epoch(toy_kg):
    async def scenario():
        service = ExtractionService(compact_every=4)
        service.register("toy", toy_kg)
        oracle = SparqlEndpoint(toy_kg).query(ALL_TRIPLES)

        # In-flight: the stream is admitted on epoch 0, pages not yet cut.
        stream = await service.sparql_stream("toy", ALL_TRIPLES, page_rows=3)

        result = await service.ingest_triples("toy", delta_rows(toy_kg, 5, seed=7))
        assert result["compacted"] and result["delta_rows"] == 0
        assert result["epoch"] == 1

        # The pages the in-flight stream yields are the epoch-0 answer,
        # untouched by the ingest-plus-compaction that happened mid-way.
        pages = list(stream.pages)
        assert sum(page.num_rows for page in pages) == oracle.num_rows
        start = 0
        for page in pages:
            for variable in oracle.variables:
                assert np.array_equal(
                    page.columns[variable],
                    oracle.columns[variable][start:start + page.num_rows],
                )
            start += page.num_rows

        # New traffic sees the compacted epoch.
        assert_sparql_equal(
            await service.sparql("toy", ALL_TRIPLES),
            SparqlEndpoint(
                service._graphs["toy"].live.epoch.cold_rebuild()
            ).query(ALL_TRIPLES),
        )
        await service.drain()

    run(scenario())


# -- the worker pool ----------------------------------------------------------


def test_pooled_ingest_is_lockstep_and_bit_identical(toy_kg):
    async def scenario(service):
        result = await service.ingest_triples("toy", delta_rows(toy_kg, 8, seed=3))
        assert result["epoch"] == 1

        cold = service._graphs["toy"].live.epoch.cold_rebuild()
        ppr = await service.ppr_top_k("toy", 0, k=4)
        assert ppr == batch_ppr_top_k(artifacts_for(cold).csr("both"), [0], 4)[0]
        ego = await service.extract_ego("toy", 0, depth=2, fanout=3, salt=5)
        [expected] = extract_ego_batch(cold, [0], 2, 3, 5)
        assert np.array_equal(ego.nodes, expected.nodes)
        assert_sparql_equal(
            await service.sparql("toy", ALL_TRIPLES),
            SparqlEndpoint(cold).query(ALL_TRIPLES),
        )
        live = service.metrics_snapshot()["graphs"]["toy"]["live"]
        assert live["epoch"] == 1 and live["ingested_triples"] == 8
        await service.drain()

    with WorkerPool(workers=2) as pool:
        service = ExtractionService(pool=pool)
        service.register("toy", toy_kg)
        run(scenario(service))


def test_pooled_respawn_replays_the_delta_log(toy_kg):
    with WorkerPool(workers=1) as pool:
        service = ExtractionService(pool=pool)
        service.register("toy", toy_kg)
        rows = delta_rows(toy_kg, 6, seed=11)
        run(service.ingest_triples("toy", rows))
        before = run(service.ppr_top_k("toy", 0, k=4))

        victim = pool.shards_of("toy")[0]
        inflight = pool._workers[victim].request("sleep", {"seconds": 60})
        os.kill(pool.worker_pids()[victim], signal.SIGKILL)
        with pytest.raises(WorkerCrashed):
            inflight.result(timeout=30)

        # The respawned worker replayed registration + the recorded delta:
        # it answers on epoch 1, identically to the pre-crash answer.
        assert pool.ping(victim) == "pong"
        assert run(service.ppr_top_k("toy", 0, k=4)) == before
        cold = service._graphs["toy"].live.epoch.cold_rebuild()
        assert before == batch_ppr_top_k(artifacts_for(cold).csr("both"), [0], 4)[0]
        run(service.drain())


def test_pooled_page_accounting_agrees_with_in_process(toy_kg):
    async def drive(service):
        stream = await service.sparql_stream("toy", ALL_TRIPLES, page_rows=3)
        for _page in stream.pages:
            pass
        snapshot = service.metrics_snapshot()["graphs"]["toy"]["endpoint"]
        await service.drain()
        return snapshot

    inproc = ExtractionService()
    inproc.register("toy", toy_kg)
    expected = run(drive(inproc))

    with WorkerPool(workers=2) as pool:
        pooled_service = ExtractionService(pool=pool)
        pooled_service.register("toy", toy_kg)
        pooled = run(drive(pooled_service))

    # The pages the parent cuts from a worker-evaluated stream are folded
    # into the worker-side endpoint counters, so pooled /metrics reports
    # the same rows and bytes the in-process endpoint accounts itself.
    for key in ("requests", "rows_returned", "bytes_shipped", "compression_ratio"):
        assert pooled[key] == expected[key], key


# -- over a real HTTP socket --------------------------------------------------


async def _request(reader, writer, method, target, body=None, headers=()):
    lines = [f"{method} {target} HTTP/1.1", "Host: test"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    payload = b"" if body is None else body
    if body is not None:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(payload)}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload)
    await writer.drain()
    return await read_http_response(reader)


def serve_and_call(kg, calls, **service_kwargs):
    async def scenario():
        service = ExtractionService(**service_kwargs)
        service.register("toy", kg)
        server = await serve_http(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            try:
                return await calls(reader, writer), service
            finally:
                writer.close()
                await writer.wait_closed()

    return asyncio.run(scenario())


def test_http_post_triples_then_queries_match_cold_rebuild(toy_kg):
    rows = delta_rows(toy_kg, 8, seed=3)

    async def calls(reader, writer):
        ingest = await _request(
            reader, writer, "POST", "/triples",
            body=json.dumps({"graph": "toy", "triples": rows}).encode(),
        )
        bad = await _request(
            reader, writer, "POST", "/triples",
            body=json.dumps(
                {"graph": "toy", "triples": [[toy_kg.num_nodes, 0, 0]]}
            ).encode(),
        )
        query = await _request(
            reader, writer, "GET", f"/sparql?query={quote(ALL_TRIPLES)}"
        )
        metrics = await _request(reader, writer, "GET", "/metrics")
        return ingest, bad, query, metrics

    (ingest, bad, query, metrics), service = serve_and_call(toy_kg, calls)

    status, _headers, body, _chunks = ingest
    assert status == 200
    payload = json.loads(body)
    assert payload == {
        "graph": "toy", "added": 8, "epoch": 1, "delta_rows": 8,
        "compacted": False,
    }

    status, _headers, body, _chunks = bad
    assert status == 400
    assert json.loads(body)["error"] == "bad_request"

    # The streamed bindings equal a cold rebuild of the merged epoch.
    cold = service._graphs["toy"].live.epoch.cold_rebuild()
    oracle = SparqlEndpoint(cold).query(ALL_TRIPLES)
    status, _headers, body, chunks = query
    assert status == 200 and chunks
    bindings = json.loads(body)["results"]["bindings"]
    assert len(bindings) == oracle.num_rows

    status, _headers, body, _chunks = metrics
    live = json.loads(body)["graphs"]["toy"]["live"]
    assert live["epoch"] == 1 and live["delta_rows"] == 8


def test_sparql_csv_negotiation_is_bit_exact_with_json_bindings(toy_kg):
    target = f"/sparql?query={quote(ALL_TRIPLES)}"

    async def calls(reader, writer):
        as_json = await _request(reader, writer, "GET", target)
        as_csv = await _request(
            reader, writer, "GET", target, headers=[("Accept", "text/csv")]
        )
        return as_json, as_csv

    (as_json, as_csv), _service = serve_and_call(toy_kg, calls)

    status, headers, body, _chunks = as_json
    assert status == 200
    assert headers["content-type"] == "application/sparql-results+json"
    parsed = json.loads(body)
    variables = parsed["head"]["vars"]
    json_rows = [
        [binding[variable]["value"] for variable in variables]
        for binding in parsed["results"]["bindings"]
    ]

    status, headers, body, chunks = as_csv
    assert status == 200 and chunks
    assert headers["content-type"] == "text/csv; charset=utf-8"
    lines = body.decode("utf-8").split("\r\n")
    assert lines[-1] == ""  # CRLF-terminated rows
    assert lines[0].split(",") == variables
    csv_rows = [line.split(",") for line in lines[1:-1]]
    assert csv_rows == json_rows


# -- SPARQL results XML: IRI-decoded bindings ---------------------------------

SPARQL_XML_NS = "http://www.w3.org/2005/sparql-results#"


def _parse_sparql_xml(body):
    """Parse a SPARQL 1.1 XML results document into (variables, rows).

    Each row maps variable → ("uri", term) or ("literal", text) so the
    tests can check both the decoded IRIs and the integer fallback.
    """
    import xml.etree.ElementTree as ET

    ns = {"sr": SPARQL_XML_NS}
    root = ET.fromstring(body.decode("utf-8"))
    assert root.tag == f"{{{SPARQL_XML_NS}}}sparql"
    variables = [
        element.attrib["name"]
        for element in root.findall("sr:head/sr:variable", ns)
    ]
    rows = []
    for result in root.findall("sr:results/sr:result", ns):
        row = {}
        for binding in result.findall("sr:binding", ns):
            uri = binding.find("sr:uri", ns)
            if uri is not None:
                row[binding.attrib["name"]] = ("uri", uri.text)
            else:
                literal = binding.find("sr:literal", ns)
                assert literal.attrib["datatype"].endswith("#integer")
                row[binding.attrib["name"]] = ("literal", literal.text)
        rows.append(row)
    return variables, rows


def test_sparql_xml_negotiation_decodes_iris_bit_exact_with_json(toy_kg):
    target = f"/sparql?query={quote(ALL_TRIPLES)}"

    async def calls(reader, writer):
        as_json = await _request(reader, writer, "GET", target)
        as_xml = await _request(
            reader, writer, "GET", target,
            headers=[("Accept", "application/sparql-results+xml")],
        )
        return as_json, as_xml

    (as_json, as_xml), _service = serve_and_call(toy_kg, calls)

    status, _headers, body, _chunks = as_json
    assert status == 200
    parsed = json.loads(body)
    variables = parsed["head"]["vars"]
    json_rows = [
        [binding[variable]["value"] for variable in variables]
        for binding in parsed["results"]["bindings"]
    ]

    status, headers, body, chunks = as_xml
    assert status == 200 and chunks
    assert headers["content-type"] == "application/sparql-results+xml; charset=utf-8"
    xml_variables, xml_rows = _parse_sparql_xml(body)
    assert xml_variables == variables

    # Every binding came back as an IRI; mapping each term back through
    # the vocabulary it was decoded from reproduces the JSON ids exactly.
    vocabs = {
        "s": toy_kg.node_vocab,
        "p": toy_kg.relation_vocab,
        "o": toy_kg.node_vocab,
    }
    decoded = []
    for row in xml_rows:
        assert all(kind == "uri" for kind, _term in row.values())
        decoded.append(
            [str(vocabs[variable].id(row[variable][1])) for variable in variables]
        )
    assert decoded == json_rows


def test_sparql_xml_decodes_class_bindings(toy_kg):
    query = "select ?v ?c where { ?v a ?c . }"

    async def calls(reader, writer):
        return await _request(
            reader, writer, "GET", f"/sparql?query={quote(query)}",
            headers=[("Accept", "application/sparql-results+xml")],
        )

    response, _service = serve_and_call(toy_kg, calls)
    status, _headers, body, _chunks = response
    assert status == 200
    _variables, rows = _parse_sparql_xml(body)
    assert rows
    for row in rows:
        kind, term = row["v"]
        assert kind == "uri" and toy_kg.node_vocab.id(term) >= 0
        kind, term = row["c"]
        assert kind == "uri" and toy_kg.class_vocab.id(term) >= 0


def test_sparql_xml_ambiguous_variable_falls_back_to_integer_literal(toy_kg):
    # ?x is a relation in one UNION arm and a node in the other — the
    # domains disagree, so the XML serializer must not decode it and
    # instead ships the raw id as an integer literal (exactly the JSON
    # value, so the formats stay bit-exact).
    query = (
        "select ?x { select ?p as ?x where { ?s ?p ?o. }"
        " union select ?s as ?x where { ?s ?p ?o. } }"
    )
    target = f"/sparql?query={quote(query)}"

    async def calls(reader, writer):
        as_json = await _request(reader, writer, "GET", target)
        as_xml = await _request(
            reader, writer, "GET", target,
            headers=[("Accept", "application/sparql-results+xml")],
        )
        return as_json, as_xml

    (as_json, as_xml), _service = serve_and_call(toy_kg, calls)
    json_values = [
        binding["x"]["value"]
        for binding in json.loads(as_json[2])["results"]["bindings"]
    ]
    status, _headers, body, _chunks = as_xml
    assert status == 200
    _variables, rows = _parse_sparql_xml(body)
    assert [row["x"] for row in rows] == [
        ("literal", value) for value in json_values
    ]


def test_sparql_xml_wins_content_negotiation_over_csv(toy_kg):
    async def calls(reader, writer):
        return await _request(
            reader, writer, "GET", f"/sparql?query={quote(ALL_TRIPLES)}",
            headers=[("Accept", "text/csv, application/sparql-results+xml")],
        )

    response, _service = serve_and_call(toy_kg, calls)
    status, headers, _body, _chunks = response
    assert status == 200
    assert headers["content-type"].startswith("application/sparql-results+xml")
