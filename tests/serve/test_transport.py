"""Remote TCP transport: bit-identity, crash/reconnect, wire hardening.

The distributed tier's contract (``repro/serve/transport.py``) in test
form:

* pooled serving over :class:`RemoteTcpTransport` is **bit-identical**
  to in-process serving for every pool op — JSON floats round-trip via
  repr (shortest round-trip), and the codec reconstructs the exact
  container types (ppr tuples, ego int64 arrays, sparql columns);
* a remote worker killed mid-request fails only its in-flight requests,
  each with a structured :class:`WorkerCrashed`; when the worker comes
  back, the slot reconnects on demand and replays registrations **and**
  the recorded ingest deltas, so answers stay bit-identical across the
  outage;
* payloads that must never cross the wire (pickled graphs, parsed query
  ASTs) are rejected parent-side with actionable errors;
* the standalone worker server survives garbage bytes, oversized lines
  and partial frames: one structured error response (or a silent drop
  for a half-frame), never a dispatched half-request.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.kg.store import open_artifacts, save_artifacts
from repro.serve import ExtractionService, WorkerCrashed, WorkerPool, bound_port
from repro.serve.transport import (
    WorkerServer,
    check_remote_payload,
    decode_result,
    encode_frame,
    encode_result,
    serve_worker,
)


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture
def toy_store(toy_kg, tmp_path):
    save_artifacts(toy_kg, str(tmp_path))
    return str(tmp_path)


def _ids(kg, s, p, o):
    """One ingest row (integer ids) from toy-graph labels."""
    return [kg.node_vocab.id(s), kg.relation_vocab.id(p), kg.node_vocab.id(o)]


# -- an in-thread standalone worker (the `repro serve-worker` core) ------------


class _WorkerThread:
    """One ndjson worker server on a background event loop."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self.server = WorkerServer()
        self.tcp = asyncio.run_coroutine_threadsafe(
            serve_worker(self.server), self.loop
        ).result(timeout=30)
        self.port = bound_port(self.tcp)

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.port}"

    def stop(self):
        async def _close():
            self.tcp.close()
            await self.tcp.wait_closed()

        asyncio.run_coroutine_threadsafe(_close(), self.loop).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


@pytest.fixture
def worker_thread():
    worker = _WorkerThread()
    yield worker
    worker.stop()


# -- bit-identity across the TCP wire for every pool op ------------------------


def test_remote_pool_bit_identical_for_every_op(toy_kg, toy_store, worker_thread):
    """All ops answered over TCP match in-process serving bitwise.

    Covers ping, register (via registration), triples (live ingest),
    ppr, ego, sparql, sparql_stream and count; /predict crosses the same
    wire in ``test_remote_predict_bit_identical`` (it needs a trained
    checkpoint).
    """
    query = "select ?s ?p ?o where { ?s ?p ?o } limit 64"
    new_triples = [
        _ids(toy_kg, "p5", "cites", "p0"),
        _ids(toy_kg, "p4", "publishedIn", "v1"),
    ]
    targets = list(range(8))

    async def drive(service):
        pprs = await asyncio.gather(
            *(service.ppr_top_k("toy", t, k=6) for t in targets)
        )
        egos = await asyncio.gather(
            *(service.extract_ego("toy", t, depth=2, fanout=3, salt=5)
              for t in targets)
        )
        rows = await service.sparql("toy", query)
        count = await service.count("toy", query)
        stream = await service.sparql_stream("toy", query, page_rows=5)
        pages = list(stream.pages)
        ingest = await service.ingest_triples("toy", new_triples)
        after = await service.sparql(
            "toy", "select ?o where { <p4> <publishedIn> ?o }"
        )
        return pprs, egos, rows, count, pages, ingest, after

    with WorkerPool(workers=0, remote_workers=[worker_thread.address]) as pool:
        assert pool.ping(0) == "pong"
        remote = ExtractionService(max_batch=8, pool=pool)
        remote.register("toy", open_artifacts(toy_store).kg, mmap_dir=toy_store)
        r_pprs, r_egos, r_rows, r_count, r_pages, r_ingest, r_after = run(
            drive(remote)
        )
        description = pool.describe()

    local = ExtractionService(max_batch=8)
    local.register("toy", toy_kg)
    l_pprs, l_egos, l_rows, l_count, l_pages, l_ingest, l_after = run(drive(local))

    # ppr: identical lists of (node, score) tuples — types included, so
    # == is a bitwise comparison of the float scores.
    assert r_pprs == l_pprs
    for r_ego, l_ego in zip(r_egos, l_egos):
        np.testing.assert_array_equal(r_ego.nodes, l_ego.nodes)
        np.testing.assert_array_equal(r_ego.src, l_ego.src)
        np.testing.assert_array_equal(r_ego.dst, l_ego.dst)
        np.testing.assert_array_equal(r_ego.rel, l_ego.rel)
    assert r_rows.variables == l_rows.variables
    for variable in l_rows.variables:
        assert r_rows.columns[variable].dtype == np.int64
        np.testing.assert_array_equal(
            r_rows.columns[variable], l_rows.columns[variable]
        )
    assert r_count == l_count
    assert [page.num_rows for page in r_pages] == [
        page.num_rows for page in l_pages
    ]
    assert r_ingest["added"] == l_ingest["added"]
    assert r_ingest["epoch"] == l_ingest["epoch"]
    for variable in l_after.variables:
        np.testing.assert_array_equal(
            r_after.columns[variable], l_after.columns[variable]
        )
    # The transport reported itself, and stats piggybacked over the wire.
    assert description["transports"] == ["remote"]
    assert pool.graph_stats("toy")["artifact_cache"]["mapped_nbytes"] > 0


def test_remote_predict_bit_identical(toy_kg, toy_task, toy_store, worker_thread):
    from repro.models import ModelConfig, RGCNNodeClassifier
    from repro.nn.checkpoint import save_checkpoint

    config = ModelConfig(
        hidden_dim=16, num_layers=2, dropout=0.0, lr=0.05, batch_size=16, seed=3
    )
    model = RGCNNodeClassifier(toy_kg, toy_task, config)
    rng = np.random.default_rng(0)
    for _ in range(2):
        model.train_epoch(rng)
    checkpoint = os.path.join(toy_store, "nc-rgcn.ckpt")
    save_checkpoint(model, checkpoint, metrics={"test_metric": 0.9})
    targets = [int(t) for t in toy_task.target_nodes]

    async def drive(service):
        return await asyncio.gather(
            *(service.predict("toy", "PV", node=t) for t in targets)
        )

    with WorkerPool(workers=0, remote_workers=[worker_thread.address]) as pool:
        remote = ExtractionService(pool=pool)
        remote.register("toy", open_artifacts(toy_store).kg, mmap_dir=toy_store)
        remote.register_checkpoint("toy", checkpoint)
        remote_payloads = run(drive(remote))

    local = ExtractionService(coalesce=False)
    local.register("toy", toy_kg)
    local.register_checkpoint("toy", checkpoint)
    assert remote_payloads == run(drive(local))


# -- payloads that must never cross the wire -----------------------------------


def test_remote_pool_rejects_pickled_graph_registration(toy_kg, worker_thread):
    with WorkerPool(workers=0, remote_workers=[worker_thread.address]) as pool:
        with pytest.raises(ValueError, match="artifact path"):
            pool.register("toy", toy_kg, warm=False)


def test_check_remote_payload_rejects_ast_queries():
    check_remote_payload("sparql", {"query": "select ?s where { ?s ?p ?o }"})
    with pytest.raises(TypeError, match="query as a string"):
        check_remote_payload("sparql", {"query": object()})
    with pytest.raises(TypeError, match="query as a string"):
        check_remote_payload("count", {"query": None})


def test_codec_round_trips_exact_container_types():
    # ppr rows survive JSON as lists; the decoder restores tuples so the
    # parent-side result compares == with the in-process one.
    ppr = [[(3, 0.125), (1, 0.0625)], []]
    assert decode_result("ppr", json.loads(encode_frame(
        {"result": encode_result("ppr", ppr)}
    ))["result"]) == ppr
    # sparql columns come back as int64 arrays keyed by variable.
    columns = {"s": np.asarray([1, 2, 3], dtype=np.int64)}
    decoded = decode_result("sparql", json.loads(encode_frame(
        {"result": encode_result("sparql", {"variables": ["s"], "columns": columns})}
    ))["result"])
    assert decoded["variables"] == ["s"]
    assert decoded["columns"]["s"].dtype == np.int64
    np.testing.assert_array_equal(decoded["columns"]["s"], columns["s"])


# -- crash containment, reconnect-on-demand, replay ----------------------------


_WORKER_SCRIPT = """
import asyncio, sys
from repro.serve.transport import WorkerServer, serve_worker

async def main():
    server = await serve_worker(WorkerServer(), port=int(sys.argv[1]))
    async with server:
        print("ready", flush=True)
        await asyncio.Event().wait()

asyncio.run(main())
"""


def _spawn_worker_process(port: int) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "src",
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-c", _WORKER_SCRIPT, str(port)],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    assert process.stdout.readline().strip() == "ready"
    return process


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_remote_worker_killed_and_restarted_replays_state(toy_kg, toy_store):
    """SIGKILL mid-request → WorkerCrashed; restart → replayed bitwise.

    The restarted worker process starts empty: the slot's reconnect must
    replay the registration **and** the ingest delta recorded before the
    kill, or the post-outage answers would be served off a stale epoch.
    """
    port = _free_port()
    process = _spawn_worker_process(port)
    try:
        with WorkerPool(workers=0, remote_workers=[f"127.0.0.1:{port}"]) as pool:
            service = ExtractionService(pool=pool)
            service.register("toy", open_artifacts(toy_store).kg, mmap_dir=toy_store)
            run(
                service.ingest_triples("toy", [_ids(toy_kg, "p5", "cites", "p0")])
            )
            before_ppr = run(service.ppr_top_k("toy", 0, k=4))
            before_rows = run(
                service.sparql("toy", "select ?o where { <p5> <cites> ?o }")
            )

            inflight = pool._workers[0].request("sleep", {"seconds": 60})
            process.kill()
            process.wait(timeout=30)
            with pytest.raises(WorkerCrashed, match="died with this request"):
                inflight.result(timeout=30)

            process = _spawn_worker_process(port)
            # Reconnect-on-demand: the next routed request retries the
            # spawn, replays registrations + deltas, then answers.
            after_ppr = run(service.ppr_top_k("toy", 0, k=4))
            after_rows = run(
                service.sparql("toy", "select ?o where { <p5> <cites> ?o }")
            )
            assert after_ppr == before_ppr
            assert after_rows.variables == before_rows.variables
            for variable in before_rows.variables:
                np.testing.assert_array_equal(
                    after_rows.columns[variable], before_rows.columns[variable]
                )
            assert pool.describe()["respawns"] >= 1
    finally:
        process.kill()
        process.wait(timeout=30)


def test_dead_replica_does_not_stall_routing(toy_kg, toy_store):
    """Requests route around a crashed owner while its reconnect pends.

    With two remote owners, killing one must not make round-robin park
    every other request on the dead slot for the respawn window
    (``RESPAWN_WAIT_SECONDS``): the live replica answers bit-identically,
    so routing prefers ready owners and only waits when none is left.
    """
    ports = [_free_port(), _free_port()]
    processes = [_spawn_worker_process(port) for port in ports]
    try:
        remotes = [f"127.0.0.1:{port}" for port in ports]
        with WorkerPool(workers=0, remote_workers=remotes, replicas=2) as pool:
            service = ExtractionService(pool=pool)
            service.register("toy", open_artifacts(toy_store).kg, mmap_dir=toy_store)
            before = run(service.ppr_top_k("toy", 0, k=4))
            assert sorted(pool.shards_of("toy")) == [0, 1]

            processes[0].kill()
            processes[0].wait(timeout=30)

            start = time.monotonic()
            answers = [run(service.ppr_top_k("toy", 0, k=4)) for _ in range(6)]
            elapsed = time.monotonic() - start
            assert answers == [before] * 6
            # Well under the 60 s respawn window the dead slot would cost.
            assert elapsed < 15.0
            described = pool.describe()
            assert described["alive"] == [False, True]

            # The worker coming back must rejoin: routing kicks its
            # reconnect in the background while replicas keep answering.
            processes[0] = _spawn_worker_process(ports[0])
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                assert run(service.ppr_top_k("toy", 0, k=4)) == before
                if pool.describe()["alive"] == [True, True]:
                    break
                time.sleep(0.1)
            assert pool.describe()["alive"] == [True, True]
            assert run(service.ppr_top_k("toy", 0, k=4)) == before
    finally:
        for process in processes:
            process.kill()
            process.wait(timeout=30)


def test_unreachable_remote_worker_fails_pool_construction():
    port = _free_port()  # nothing listens here
    with pytest.raises(OSError):
        WorkerPool(workers=0, remote_workers=[f"127.0.0.1:{port}"])


def test_remote_address_must_be_host_port():
    with pytest.raises(ValueError, match="HOST:PORT"):
        WorkerPool(workers=0, remote_workers=["localhost"])
    with pytest.raises(ValueError, match="HOST:PORT"):
        WorkerPool(workers=0, remote_workers=["localhost:not-a-port"])


# -- wire hardening on the standalone worker server ----------------------------


def _raw_exchange(port: int, data: bytes, expect_reply: bool = True, lines: int = 1):
    """Send raw bytes, return ``lines`` response lines (b"" on close)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(data)
        sock.shutdown(socket.SHUT_WR)
        reader = sock.makefile("rb")
        received = [reader.readline() for _ in range(lines)]
        rest = reader.read()
    if lines > 1:
        return received, rest
    if expect_reply:
        return json.loads(received[0]), rest
    return received[0], rest


def test_worker_server_answers_garbage_bytes_with_one_error(worker_thread):
    response, rest = _raw_exchange(
        worker_thread.port, b"\x00\xff this is not json\n"
    )
    assert response["status"] == "error"
    assert response["result"][0] == "BadRequest"
    assert "invalid JSON" in response["result"][1]
    assert rest == b""  # the connection closed after the error frame


def test_worker_server_rejects_non_object_and_bad_payload_frames(worker_thread):
    response, _ = _raw_exchange(worker_thread.port, b"[1,2,3]\n")
    assert response["status"] == "error"
    assert "JSON object with a string 'op'" in response["result"][1]
    response, _ = _raw_exchange(
        worker_thread.port, b'{"id":1,"op":"ping","payload":[]}\n'
    )
    assert response["status"] == "error"
    assert "'payload' must be a JSON object" in response["result"][1]


def test_worker_server_rejects_oversized_frames(worker_thread):
    from repro.serve.wire import MAX_LINE_BYTES

    blob = b'{"id":1,"op":"ping","payload":{"x":"' + b"a" * MAX_LINE_BYTES + b'"}}\n'
    response, rest = _raw_exchange(worker_thread.port, blob)
    assert response["status"] == "error"
    assert "exceeds" in response["result"][1]
    assert rest == b""


def test_worker_server_drops_partial_frames_without_dispatch(worker_thread):
    # Half a request (no trailing newline) at EOF must never execute —
    # the server closes without a response.
    line, rest = _raw_exchange(
        worker_thread.port, b'{"id":1,"op":"ping"', expect_reply=False
    )
    assert line == b"" and rest == b""
    # And the server is still healthy for well-formed traffic afterwards.
    response, _ = _raw_exchange(
        worker_thread.port, b'{"id":2,"op":"ping","payload":{}}\n'
    )
    assert response == {"id": 2, "status": "ok", "result": "pong"}


def test_worker_server_maps_op_errors_to_structured_responses(
    worker_thread, toy_store
):
    register = json.dumps({
        "id": 1, "op": "register",
        "payload": {"name": "toy", "mmap_dir": toy_store, "compression": True},
    }).encode() + b"\n"
    unknown = b'{"id":3,"op":"nope","payload":{"graph":"toy"}}\n'
    (registered, response), _ = _raw_exchange(
        worker_thread.port, register + unknown, expect_reply=False, lines=2
    )
    assert json.loads(registered)["status"] == "ok"
    response = json.loads(response)
    assert response["status"] == "error"
    assert response["result"][0] == "ValueError"
    assert "unknown pool op" in response["result"][1]
    response, _ = _raw_exchange(
        worker_thread.port,
        b'{"id":4,"op":"ppr","payload":{"graph":"missing","targets":[0],'
        b'"k":4,"alpha":0.25,"eps":0.0002}}\n'
    )
    assert response["status"] == "error"
    assert response["result"][0] == "KeyError"


# -- pipelining on one connection ----------------------------------------------


def test_worker_server_answers_pipelined_frames_in_order(worker_thread):
    frames = b"".join(
        json.dumps({"id": i, "op": "ping", "payload": {}}).encode() + b"\n"
        for i in range(8)
    )
    with socket.create_connection(("127.0.0.1", worker_thread.port), timeout=10) as sock:
        sock.sendall(frames)
        reader = sock.makefile("rb")
        responses = [json.loads(reader.readline()) for _ in range(8)]
    assert [r["id"] for r in responses] == list(range(8))
    assert all(r["status"] == "ok" for r in responses)


# -- mixed local + remote tiers ------------------------------------------------


def test_mixed_local_and_remote_slots_share_one_graph(toy_store, worker_thread):
    """A pool spanning both transports serves one graph bit-identically."""
    kg = open_artifacts(toy_store).kg
    with WorkerPool(workers=1, remote_workers=[worker_thread.address]) as pool:
        assert pool.num_workers == 2
        service = ExtractionService(pool=pool)
        service.register("toy", kg, mmap_dir=toy_store)
        assert sorted(pool.shards_of("toy")) == [0, 1]
        for index in range(2):
            assert pool.ping(index) == "pong"
        # Round-robin really lands on both transports: issue a few calls
        # and compare against the in-process answer each time.
        local = ExtractionService()
        local.register("toy", kg)
        expected = run(local.ppr_top_k("toy", 0, k=4))
        for _ in range(4):
            assert run(service.ppr_top_k("toy", 0, k=4)) == expected
        assert pool.describe()["transports"] == ["local", "remote"]
