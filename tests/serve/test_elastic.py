"""Placement policies and pool elasticity: resize, handoff, pressure.

The placement/lifecycle layers of the worker-pool split
(``serve/placement.py`` + ``serve/pool.py``) in test form:

* :class:`LoadAwarePlacement` degrades to the deterministic hash walk
  when there is no load signal, and routes graphs away from loaded
  slots when there is one;
* ``pool.resize()`` grows and shrinks the local tier with graceful
  shard handoff — new owners receive the registration **and** the full
  ingest delta chain before routing flips, so answers stay
  bit-identical across every resize;
* the elastic controller reacts to sustained Retry-After pressure by
  growing within ``workers_min..workers_max``, and shrinks back when
  the pool is idle;
* admission rejections feed the pressure signal end to end
  (``ServiceMetrics.record_rejected`` → ``pool.note_pressure``).
"""

import asyncio
import time

import numpy as np
import pytest

from repro.serve import ExtractionService, ServiceOverloaded, WorkerPool
from repro.serve.metrics import ServiceMetrics
from repro.serve.placement import (
    HashPlacement,
    LoadAwarePlacement,
    WorkerLoad,
)
from repro.serve.pool import ELASTIC_COOLDOWN_SECONDS


def run(coroutine):
    return asyncio.run(coroutine)


# -- placement policies --------------------------------------------------------


def test_load_aware_placement_degrades_to_hash_when_idle():
    """No load signal → the deterministic hash walk, bit for bit."""
    active = [0, 1, 2, 3]
    for name in ("mag", "dblp", "yago4", "load"):
        for replicas in (1, 2, None):
            hash_choice = HashPlacement(replicas).place(name, active, {})
            idle_loads = {index: WorkerLoad() for index in active}
            assert LoadAwarePlacement(replicas).place(
                name, active, idle_loads
            ) == hash_choice


def test_load_aware_placement_avoids_loaded_slots():
    active = [0, 1, 2, 3]
    home = HashPlacement(1).place("mag", active, {})[0]
    loads = {index: WorkerLoad() for index in active}
    loads[home] = WorkerLoad(queue_depth_ewma=10.0)
    chosen = LoadAwarePlacement(1).place("mag", active, loads)
    assert chosen[0] != home
    # Memory counts too: a slot holding gigabytes of artifacts ranks
    # behind an empty one even at equal queue depth.
    heavy = WorkerLoad(heap_nbytes=4 << 30, mapped_nbytes=1 << 30)
    assert heavy.score() > WorkerLoad(queue_depth_ewma=2.0).score()


def test_load_aware_placement_is_observable():
    policy = LoadAwarePlacement(2)
    policy.place("mag", [0, 1, 2], {0: WorkerLoad(queue_depth_ewma=1.0)})
    assert policy.describe() == {"policy": "load", "replicas": 2}
    assert set(policy.loads_seen) <= {0, 1, 2}


def test_placement_rejects_empty_active_set():
    with pytest.raises(ValueError, match="empty worker set"):
        HashPlacement(1).place("mag", [], {})
    with pytest.raises(ValueError, match="empty worker set"):
        LoadAwarePlacement(1).place("mag", [], {})


def test_pool_accepts_a_custom_placement_policy(toy_kg):
    policy = LoadAwarePlacement()
    with WorkerPool(workers=2, placement=policy) as pool:
        pool.register("toy", toy_kg, warm=False)
        assert pool.describe()["placement"]["policy"] == "load"
        assert sorted(pool.shards_of("toy")) == [0, 1]


# -- resize: graceful handoff, bit-identical across scale events ---------------


def _ids(kg, s, p, o):
    return [kg.node_vocab.id(s), kg.relation_vocab.id(p), kg.node_vocab.id(o)]


def test_resize_grows_and_shrinks_with_bit_identical_answers(toy_kg):
    query = "select ?o where { <p5> <cites> ?o }"
    with WorkerPool(workers=1) as pool:
        service = ExtractionService(pool=pool)
        service.register("toy", toy_kg)
        # Ingest before growing: the new owners must replay this delta
        # during handoff or post-resize queries serve a stale epoch.
        run(service.ingest_triples("toy", [_ids(toy_kg, "p5", "cites", "p0")]))
        before_ppr = run(service.ppr_top_k("toy", 0, k=4))
        before_rows = run(service.sparql("toy", query))

        grown = pool.resize(3)
        assert grown["workers"] == 3
        assert sorted(pool.shards_of("toy")) == [0, 1, 2]
        # Round-robin now hits every slot; all must agree bitwise.
        for _ in range(6):
            assert run(service.ppr_top_k("toy", 0, k=4)) == before_ppr
            rows = run(service.sparql("toy", query))
            for variable in before_rows.variables:
                np.testing.assert_array_equal(
                    rows.columns[variable], before_rows.columns[variable]
                )

        shrunk = pool.resize(1)
        assert shrunk["workers"] == 1
        assert shrunk["retired"].count(True) == 2
        assert len(pool.shards_of("toy")) == 1
        assert run(service.ppr_top_k("toy", 0, k=4)) == before_ppr
        # Re-growing re-activates retired slots in place (stable indices).
        regrown = pool.resize(2)
        assert regrown["workers"] == 2
        assert regrown["retired"].count(True) == 1
        assert run(service.ppr_top_k("toy", 0, k=4)) == before_ppr


def test_resize_reports_via_describe(toy_kg):
    with WorkerPool(workers=1) as pool:
        pool.register("toy", toy_kg, warm=False)
        description = pool.resize(2)
        assert description["elastic"]["resizes"] == 1
        assert description["elastic"]["active_local"] == 2
        assert description["transports"] == ["local", "local"]


# -- the elastic controller ----------------------------------------------------


def _wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


def test_elastic_pool_grows_under_pressure_and_shrinks_idle(toy_kg):
    with WorkerPool(workers=1, workers_min=1, workers_max=2) as pool:
        service = ExtractionService(pool=pool)
        service.register("toy", toy_kg)
        run(service.ppr_top_k("toy", 0, k=4))
        assert pool.describe()["elastic"] == {
            "enabled": True, "min": 1, "max": 2, "active_local": 1,
            "resizes": 0, "pressure_ewma": 0.0, "error": None,
        }

        # Sustained Retry-After pressure → scale up (the resize runs on a
        # background thread; wait for it to land).
        pool._last_elastic -= 2 * ELASTIC_COOLDOWN_SECONDS
        for _ in range(4):
            pool.note_pressure(retry_after=5.0)
        assert _wait_for(
            lambda: sorted(pool.shards_of("toy")) == [0, 1]
        ), pool.describe()
        assert pool.describe()["elastic"]["active_local"] == 2
        before = run(service.ppr_top_k("toy", 0, k=4))

        # Idle (zero depth, decayed pressure) → scale back down.
        pool._pressure_ewma = 0.0
        for slot in pool._workers:
            slot.depth_ewma = 0.0
        pool._last_elastic -= 2 * ELASTIC_COOLDOWN_SECONDS
        run(service.ppr_top_k("toy", 0, k=4))  # the tick rides a call
        assert _wait_for(
            lambda: pool.describe()["elastic"]["active_local"] == 1
        ), pool.describe()
        assert run(service.ppr_top_k("toy", 0, k=4)) == before


def test_elastic_bounds_are_validated():
    with pytest.raises(ValueError, match="workers_min"):
        WorkerPool(workers=1, workers_min=3, workers_max=2)
    with pytest.raises(ValueError, match="within"):
        WorkerPool(workers=5, workers_min=1, workers_max=2)
    with pytest.raises(ValueError, match="workers must be"):
        WorkerPool(workers=0)


def test_manual_resize_is_clamped_to_the_elastic_range(toy_kg):
    with WorkerPool(workers=1, workers_min=1, workers_max=2) as pool:
        assert pool.resize(10)["elastic"]["active_local"] == 2
        assert pool.resize(0)["elastic"]["active_local"] == 1


# -- pressure wiring: rejections → note_pressure → metrics ---------------------


def test_retry_after_ewma_smooths_rejection_hints():
    metrics = ServiceMetrics()
    assert metrics.snapshot()["admission"]["retry_after_ewma_s"] == 0.0
    metrics.record_rejected(1.0)
    assert metrics.snapshot()["admission"]["retry_after_ewma_s"] == 1.0
    metrics.record_rejected(2.0)
    assert metrics.snapshot()["admission"]["retry_after_ewma_s"] == pytest.approx(1.2)
    # A hint-less rejection still counts but does not move the EWMA.
    metrics.record_rejected()
    snapshot = metrics.snapshot()["admission"]
    assert snapshot["rejected"] == 3
    assert snapshot["retry_after_ewma_s"] == pytest.approx(1.2)


def test_admission_rejections_feed_pool_pressure(toy_kg):
    with WorkerPool(workers=1) as pool:
        service = ExtractionService(pool=pool, max_pending=1)
        service.register("toy", toy_kg)

        async def flood():
            results = await asyncio.gather(
                *(service.ppr_top_k("toy", 0, k=4) for _ in range(32)),
                return_exceptions=True,
            )
            return sum(isinstance(r, ServiceOverloaded) for r in results)

        rejected = run(flood())
        assert rejected > 0
        assert service.metrics_snapshot()["admission"]["rejected"] == rejected
        assert service.metrics_snapshot()["admission"]["retry_after_ewma_s"] > 0.0
        assert pool.describe()["elastic"]["pressure_ewma"] > 0.0
