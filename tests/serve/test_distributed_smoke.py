"""Distributed tier smoke: CLI serve-workers + a remote-placement parent.

The cross-machine story end to end, exactly as an operator would run it
(``docs/serving.md``): ``repro build-artifacts`` once, two standalone
``repro serve-worker`` processes on localhost TCP, and a parent
``repro serve --remote-worker`` front end that owns no kernel state of
its own — every answer crosses the wire twice and must still be
bit-identical to in-process extraction.
"""

import json
import os
import re
import subprocess
import sys

import pytest

from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SPARQL = "select ?s ?p ?o where { ?s ?p ?o } limit 12"


def _spawn(argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )


def _banner(process, pattern):
    line = process.stdout.readline()
    match = re.search(pattern, line)
    assert match, f"unexpected banner: {line!r}"
    return line, match


@pytest.mark.slow
def test_two_cli_serve_workers_behind_a_remote_placement_parent(tmp_path):
    import http.client
    from urllib.parse import quote

    from repro.kg.cache import artifacts_for
    from repro.kg.store import open_artifacts
    from repro.sampling.ppr import batch_ppr_top_k
    from repro.sparql.endpoint import SparqlEndpoint

    store = str(tmp_path / "store")
    assert main(["build-artifacts", "--dataset", "mag", "--scale", "tiny", "--out", store]) == 0

    workers = []
    parent = None
    try:
        addresses = []
        for _ in range(2):
            worker = _spawn([
                "serve-worker", "--listen", "127.0.0.1:0",
                "--mmap-dir", store, "--graph", "mag", "--duration", "120",
            ])
            workers.append(worker)
            line, match = _banner(worker, r"listening on (127\.0\.0\.1:\d+)")
            assert "graphs: mag" in line  # pre-registered from the local store
            addresses.append(match.group(1))

        parent = _spawn([
            "serve", "--dataset", "mag", "--scale", "tiny",
            "--protocol", "http", "--mmap-dir", store,
            "--remote-worker", addresses[0], "--remote-worker", addresses[1],
            "--placement", "load", "--port", "0", "--duration", "120",
        ])
        line, match = _banner(parent, r"on 127\.0\.0\.1:(\d+) via http")
        assert "pool of 2 workers" in line and "(2 remote)" in line
        assert "load placement" in line
        port = int(match.group(1))

        kg = open_artifacts(store).kg
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)

        # PPR crossed parent → TCP worker → back; floats survive the JSON
        # hop exactly (repr shortest round-trip), so equality is bitwise.
        expected = batch_ppr_top_k(artifacts_for(kg).csr("both"), [5], 8)[5]
        for _ in range(4):  # round-robin: both remote slots must answer
            conn.request("GET", "/ppr?graph=mag&target=5&k=8")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read()) == json.loads(json.dumps(expected))

        oracle = SparqlEndpoint(kg).query(SPARQL)
        conn.request("GET", f"/sparql?query={quote(SPARQL)}")
        response = conn.getresponse()
        assert response.status == 200
        bindings = json.loads(response.read())["results"]["bindings"]
        assert len(bindings) == oracle.num_rows
        for i, binding in enumerate(bindings):
            for variable in oracle.variables:
                assert binding[variable]["value"] == str(oracle.columns[variable][i])

        conn.request("GET", "/metrics")
        metrics = json.loads(conn.getresponse().read())
        pool = metrics["config"]["pool"]
        assert pool["workers"] == 2
        assert pool["transports"] == ["remote", "remote"]
        assert pool["alive"] == [True, True]
        assert pool["placement"] == {"policy": "load", "replicas": None}
        assert sorted(pool["graphs"]["mag"]) == [0, 1]
        # The workers mapped the store; the parent holds no kernel state.
        assert metrics["graphs"]["mag"]["artifact_cache"]["mapped_nbytes"] > 0
        conn.close()
    finally:
        for process in [parent, *workers]:
            if process is not None:
                process.terminate()
                process.wait(timeout=10)
