"""/predict: batched inference vs the scalar oracle, routing, caching.

The contract under test is the serving tentpole: coalesced /predict
windows (extraction→inference pipelining through the batch PPR kernel
and one vectorized scoring pass) must be **bit-identical** to the
retained one-request-at-a-time scalar oracle — in-process, over HTTP,
and across the worker-pool process boundary — while query-aware routing
and the bounded result cache stay observable through /metrics.
"""

import asyncio
import json
import os
import signal
from urllib.parse import urlencode

import numpy as np
import pytest

from repro.core.tasks import LinkPredictionTask, Split
from repro.models import (
    ModelConfig,
    RGCNLinkPredictor,
    RGCNNodeClassifier,
    SeHGNNClassifier,
)
from repro.nn.checkpoint import CheckpointError, save_checkpoint
from repro.serve import (
    ExtractionService,
    ModelRegistry,
    WorkerCrashed,
    WorkerPool,
    bound_port,
    compare_predict_serving,
    serve_http,
    serve_tcp,
)

CONFIG = ModelConfig(hidden_dim=16, num_layers=2, dropout=0.0, lr=0.05, batch_size=16, seed=3)


def run(coroutine):
    return asyncio.run(coroutine)


def _train(model, epochs=3):
    rng = np.random.default_rng(0)
    for _ in range(epochs):
        model.train_epoch(rng)
    return model


def _lp_task(toy_kg):
    papers = np.asarray([toy_kg.node_vocab.id(f"p{i}") for i in range(6)])
    authors = np.asarray([toy_kg.node_vocab.id(f"a{i}") for i in range(3)])
    return LinkPredictionTask(
        name="HA",
        predicate=toy_kg.relation_vocab.id("hasAuthor"),
        head_class=toy_kg.class_vocab.id("Paper"),
        tail_class=toy_kg.class_vocab.id("Author"),
        edges=np.stack([papers, np.repeat(authors, 2)], axis=1),
        split=Split(np.arange(4), np.asarray([4]), np.asarray([5])),
    )


@pytest.fixture
def nc_checkpoint(toy_kg, toy_task, tmp_path):
    model = _train(RGCNNodeClassifier(toy_kg, toy_task, CONFIG))
    path = str(tmp_path / "nc-rgcn.ckpt")
    save_checkpoint(model, path, metrics={"test_metric": 0.9})
    return path


@pytest.fixture
def nc_checkpoint_sehgnn(toy_kg, toy_task, tmp_path):
    model = _train(SeHGNNClassifier(toy_kg, toy_task, CONFIG))
    path = str(tmp_path / "nc-sehgnn.ckpt")
    save_checkpoint(model, path, metrics={"test_metric": 0.5})
    return path


@pytest.fixture
def lp_checkpoint(toy_kg, tmp_path):
    model = _train(RGCNLinkPredictor(toy_kg, _lp_task(toy_kg), CONFIG))
    path = str(tmp_path / "lp-rgcn.ckpt")
    save_checkpoint(model, path, metrics={"test_metric": 0.7})
    return path


def make_service(kg, checkpoints, **kwargs):
    service = ExtractionService(**kwargs)
    service.register("toy", kg)
    for path in checkpoints:
        service.register_checkpoint("toy", path)
    return service


async def _gather_predicts(service, task, items, field="node", **kwargs):
    return await asyncio.gather(
        *(service.predict("toy", task, **{field: item}, **kwargs) for item in items)
    )


# -- bit-exactness: batched path == scalar oracle ------------------------------


def test_nc_predict_matches_scalar_oracle(toy_kg, toy_task, nc_checkpoint):
    targets = [int(t) for t in toy_task.target_nodes]
    coalesced = make_service(toy_kg, [nc_checkpoint], max_batch=4, max_delay=0.002)
    serial = make_service(toy_kg, [nc_checkpoint], coalesce=False)

    batched = run(_gather_predicts(coalesced, "PV", targets))
    oracle = run(_gather_predicts(serial, "PV", targets))
    assert batched == oracle
    for payload, target in zip(batched, targets):
        assert payload["task_type"] == "NC"
        assert payload["model"] == "RGCN"
        assert payload["node"] == target
        assert payload["label"] == int(np.argmax(payload["scores"]))


@pytest.mark.parametrize("candidates", [0, 4])
def test_lp_predict_matches_scalar_oracle(toy_kg, lp_checkpoint, candidates):
    heads = [int(h) for h in _lp_task(toy_kg).edges[:, 0]]
    coalesced = make_service(toy_kg, [lp_checkpoint], max_batch=4, max_delay=0.002)
    serial = make_service(toy_kg, [lp_checkpoint], coalesce=False)

    batched = run(_gather_predicts(
        coalesced, "HA", heads, field="head", k=3, candidates=candidates
    ))
    oracle = run(_gather_predicts(
        serial, "HA", heads, field="head", k=3, candidates=candidates
    ))
    assert batched == oracle
    for payload in batched:
        assert payload["task_type"] == "LP"
        assert len(payload["tails"]) == len(payload["scores"]) <= 3
        # Ranked score-descending with deterministic id tie-breaks.
        assert payload["scores"] == sorted(payload["scores"], reverse=True)


def test_mixed_task_traffic_shares_one_service(toy_kg, toy_task, nc_checkpoint, lp_checkpoint):
    service = make_service(toy_kg, [nc_checkpoint, lp_checkpoint], max_batch=8)
    node = int(toy_task.target_nodes[0])
    head = int(_lp_task(toy_kg).edges[0, 0])

    async def scenario():
        return await asyncio.gather(
            service.predict("toy", "PV", node=node),
            service.predict("toy", "HA", head=head, k=2),
        )

    nc, lp = run(scenario())
    assert nc["task_type"] == "NC" and lp["task_type"] == "LP"


def test_pooled_predict_bit_identical(toy_kg, toy_task, nc_checkpoint, lp_checkpoint):
    targets = [int(t) for t in toy_task.target_nodes]
    heads = [int(h) for h in _lp_task(toy_kg).edges[:, 0]]

    async def both(service):
        nc = await _gather_predicts(service, "PV", targets)
        lp = await _gather_predicts(service, "HA", heads, field="head", candidates=4)
        return nc, lp

    serial = make_service(toy_kg, [nc_checkpoint, lp_checkpoint], coalesce=False)
    nc_oracle, lp_oracle = run(both(serial))

    with WorkerPool(workers=2) as pool:
        pooled = make_service(toy_kg, [nc_checkpoint, lp_checkpoint], pool=pool)
        nc_pooled, lp_pooled = run(both(pooled))
    assert nc_pooled == nc_oracle
    assert lp_pooled == lp_oracle


def test_loadgen_compare_predict_serving(toy_kg, toy_task, nc_checkpoint, lp_checkpoint):
    lp_heads = [int(h) for h in _lp_task(toy_kg).edges[:, 0]]
    requests = [("PV", int(t)) for t in toy_task.target_nodes] * 4
    requests += [("HA", head) for head in lp_heads] * 4
    serial, fast, speedup = compare_predict_serving(
        toy_kg, [nc_checkpoint, lp_checkpoint], requests,
        k=3, candidates=4, concurrency=8,
    )
    # compare_predict_serving raises if any position diverged bit-wise.
    assert serial.requests == fast.requests == len(requests)
    assert speedup > 0


# -- respawn: checkpoints are replayed like graph registrations ----------------


def test_pool_respawn_replays_checkpoints(toy_kg, toy_task, nc_checkpoint):
    target = int(toy_task.target_nodes[0])
    with WorkerPool(workers=1) as pool:
        service = make_service(toy_kg, [nc_checkpoint], pool=pool)
        before = run(service.predict("toy", "PV", node=target))

        inflight = pool._workers[0].request("sleep", {"seconds": 60})
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
        with pytest.raises(WorkerCrashed):
            inflight.result(timeout=30)

        assert pool.ping(0) == "pong"
        # Fresh cache epoch state lives parent-side; bypass the result
        # cache to prove the *worker* re-registered the checkpoint path.
        service._predict_cache.clear()
        assert run(service.predict("toy", "PV", node=target)) == before


# -- query-aware routing -------------------------------------------------------


def test_routing_prefers_best_metric_without_budget(
    toy_kg, toy_task, nc_checkpoint, nc_checkpoint_sehgnn
):
    service = make_service(toy_kg, [nc_checkpoint, nc_checkpoint_sehgnn])
    # RGCN recorded test_metric 0.9 vs SeHGNN's 0.5.
    assert service._route_predict("toy", "PV", None) == "RGCN"
    payload = run(service.predict("toy", "PV", node=int(toy_task.target_nodes[0])))
    assert payload["model"] == "RGCN"


def test_routing_budget_picks_cheapest_fitting_model(
    toy_kg, toy_task, nc_checkpoint, nc_checkpoint_sehgnn
):
    service = make_service(toy_kg, [nc_checkpoint, nc_checkpoint_sehgnn])
    # Both models cold: every candidate optimistically fits, so the budget
    # does not change the quality-ranked choice.
    assert service._route_predict("toy", "PV", 5.0) == "RGCN"
    # Observed traffic: RGCN is slow (500ms EWMA), SeHGNN fast (1ms).
    service.metrics.record_completed("predict:RGCN", 0.5)
    service.metrics.record_completed("predict:SeHGNN", 0.001)
    # 10ms budget: the accurate model no longer fits; route to the one
    # that does.
    assert service._route_predict("toy", "PV", 10.0) == "SeHGNN"
    # Impossible budget: nothing fits; fall back to the fastest observed.
    assert service._route_predict("toy", "PV", 1e-6) == "SeHGNN"
    # No budget: accuracy wins regardless of latency.
    assert service._route_predict("toy", "PV", None) == "RGCN"
    payload = run(
        service.predict("toy", "PV", node=int(toy_task.target_nodes[0]), budget_ms=10.0)
    )
    assert payload["model"] == "SeHGNN"


def test_model_pin_overrides_routing(toy_kg, toy_task, nc_checkpoint, nc_checkpoint_sehgnn):
    service = make_service(toy_kg, [nc_checkpoint, nc_checkpoint_sehgnn])
    payload = run(
        service.predict("toy", "PV", node=int(toy_task.target_nodes[0]), model="SeHGNN")
    )
    assert payload["model"] == "SeHGNN"


# -- result cache --------------------------------------------------------------


def test_result_cache_hits_and_metrics(toy_kg, toy_task, nc_checkpoint):
    service = make_service(toy_kg, [nc_checkpoint])
    target = int(toy_task.target_nodes[0])

    async def scenario():
        first = await service.predict("toy", "PV", node=target)
        second = await service.predict("toy", "PV", node=target)
        other = await service.predict("toy", "PV", node=int(toy_task.target_nodes[1]))
        return first, second, other

    first, second, other = run(scenario())
    assert first == second and other != first
    predict = service.metrics_snapshot()["predict"]
    assert predict["cache"]["hits"] == 1
    assert predict["cache"]["misses"] == 2
    assert predict["cache"]["size"] == 2
    registry = predict["registry"]
    assert registry["loads"] == 1  # one checkpoint parse served every request
    assert registry["checkpoints"][0]["architecture"] == "RGCN"
    assert registry["checkpoints"][0]["loaded"]


def test_result_cache_is_bounded_lru(toy_kg, toy_task, nc_checkpoint):
    service = make_service(toy_kg, [nc_checkpoint], predict_cache_size=2)
    targets = [int(t) for t in toy_task.target_nodes[:4]]
    run(_gather_predicts(service, "PV", targets))
    assert len(service._predict_cache) == 2


def test_serial_mode_never_caches(toy_kg, toy_task, nc_checkpoint):
    service = make_service(toy_kg, [nc_checkpoint], coalesce=False)
    target = int(toy_task.target_nodes[0])

    async def scenario():
        await service.predict("toy", "PV", node=target)
        await service.predict("toy", "PV", node=target)

    run(scenario())
    cache = service.metrics_snapshot()["predict"]["cache"]
    assert cache["hits"] == 0 and cache["size"] == 0


# -- validation and error paths ------------------------------------------------


def test_predict_request_validation(toy_kg, toy_task, nc_checkpoint):
    service = make_service(toy_kg, [nc_checkpoint])
    target = int(toy_task.target_nodes[0])
    with pytest.raises(ValueError, match="exactly one"):
        run(service.predict("toy", "PV", node=target, head=target))
    with pytest.raises(ValueError, match="exactly one"):
        run(service.predict("toy", "PV"))
    with pytest.raises(ValueError, match="k must be"):
        run(service.predict("toy", "PV", node=target, k=0))
    with pytest.raises(ValueError, match="candidates must be"):
        run(service.predict("toy", "PV", node=target, candidates=-1))
    with pytest.raises(ValueError, match="no checkpoint serves task 'XX'"):
        run(service.predict("toy", "XX", node=target))
    with pytest.raises(ValueError, match="no SeHGNN checkpoint"):
        run(service.predict("toy", "PV", node=target, model="SeHGNN"))
    with pytest.raises(KeyError, match="unknown graph"):
        run(service.predict("nope", "PV", node=target))


def test_bad_item_fails_its_request_not_the_window(toy_kg, toy_task, nc_checkpoint, lp_checkpoint):
    service = make_service(toy_kg, [nc_checkpoint, lp_checkpoint], max_batch=8)
    good = int(toy_task.target_nodes[0])
    movie = int(toy_kg.node_vocab.id("m0"))  # not a PV target

    async def scenario():
        results = await asyncio.gather(
            service.predict("toy", "PV", node=good),
            service.predict("toy", "PV", node=movie),
            service.predict("toy", "HA", head=toy_kg.num_nodes + 5),
            return_exceptions=True,
        )
        return results

    ok, bad_nc, bad_lp = run(scenario())
    assert ok["node"] == good
    assert isinstance(bad_nc, ValueError) and "not a target" in str(bad_nc)
    assert isinstance(bad_lp, ValueError) and "out of range" in str(bad_lp)


def test_registry_rejects_skew_and_conflicts(toy_kg, toy_task, nc_checkpoint, tmp_path):
    registry = ModelRegistry()
    registry.add("toy", nc_checkpoint, expected_graph="toy")
    assert registry.add("toy", nc_checkpoint) == registry.meta("toy", "PV", "RGCN")
    with pytest.raises(CheckpointError, match="serves 'elsewhere'"):
        registry.add("toy", nc_checkpoint, expected_graph="elsewhere")
    other = str(tmp_path / "other.ckpt")
    save_checkpoint(RGCNNodeClassifier(toy_kg, toy_task, CONFIG), other)
    with pytest.raises(ValueError, match="already serves task 'PV'"):
        registry.add("toy", other)


# -- front ends ----------------------------------------------------------------


def _http_scenario(kg, checkpoints, calls, **service_kwargs):
    async def scenario():
        service = ExtractionService(**service_kwargs)
        service.register("toy", kg)
        for path in checkpoints:
            service.register_checkpoint("toy", path)
        server = await serve_http(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            try:
                return await calls(reader, writer), service
            finally:
                writer.close()
                await writer.wait_closed()

    return asyncio.run(scenario())


async def _http_get(reader, writer, path):
    from repro.serve.loadgen import read_http_response

    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode("latin-1"))
    await writer.drain()
    status, _headers, body, _chunks = await read_http_response(reader)
    return status, json.loads(body) if body else None


def test_http_predict_end_to_end(toy_kg, toy_task, nc_checkpoint, lp_checkpoint):
    node = int(toy_task.target_nodes[0])
    head = int(_lp_task(toy_kg).edges[0, 0])

    async def calls(reader, writer):
        return [
            await _http_get(
                reader, writer, "/predict?" + urlencode({"graph": "toy", "task": "PV", "node": node})
            ),
            await _http_get(
                reader, writer,
                "/predict?" + urlencode({
                    "graph": "toy", "task": "HA", "head": head, "k": 2, "candidates": 4,
                }),
            ),
            await _http_get(reader, writer, "/predict?graph=toy&task=PV"),
            await _http_get(
                reader, writer, f"/predict?graph=toy&task=PV&node={node}&head={head}"
            ),
            await _http_get(reader, writer, f"/predict?graph=nope&task=PV&node={node}"),
            await _http_get(reader, writer, f"/predict?graph=toy&task=XX&node={node}"),
        ]

    responses, service = _http_scenario(toy_kg, [nc_checkpoint, lp_checkpoint], calls)
    (nc_status, nc_payload), (lp_status, lp_payload) = responses[0], responses[1]
    assert nc_status == 200 and lp_status == 200
    # The wire payload is the in-process payload, JSON round-tripped
    # exactly (repr round-trip preserves float bits).
    fresh = _rebuild(toy_kg, [nc_checkpoint])
    expected = run(fresh.predict("toy", "PV", node=node))
    assert nc_payload == expected
    assert lp_payload["tails"] and len(lp_payload["tails"]) <= 2
    for status, payload in responses[2:4]:
        assert status == 400 and "exactly one" in payload["detail"]
    assert responses[4][0] == 404
    assert responses[5][0] == 400 and "no checkpoint serves task" in responses[5][1]["detail"]


def _rebuild(kg, checkpoints):
    fresh = ExtractionService()
    fresh.register("toy", kg)
    for path in checkpoints:
        fresh.register_checkpoint("toy", path)
    return fresh


def test_tcp_predict_over_the_wire(toy_kg, toy_task, nc_checkpoint):
    node = int(toy_task.target_nodes[0])

    async def scenario():
        service = ExtractionService()
        service.register("toy", toy_kg)
        service.register_checkpoint("toy", nc_checkpoint)
        server = await serve_tcp(service, port=0)
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", bound_port(server)
            )
            requests = [
                {"op": "predict", "graph": "toy", "task": "PV", "node": node},
                {"op": "predict", "graph": "toy", "task": "PV"},
            ]
            responses = []
            for request in requests:
                writer.write(json.dumps(request).encode() + b"\n")
                await writer.drain()
                responses.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
        expected = await service.predict("toy", "PV", node=node)
        return responses, expected

    responses, expected = run(scenario())
    assert responses[0]["ok"] and responses[0]["result"] == expected
    assert not responses[1]["ok"]
    assert responses[1]["error"] == "bad_request"
    assert "exactly one" in responses[1]["detail"]
