"""ExtractionService: routing, correctness vs oracles, backpressure."""

import asyncio

import numpy as np
import pytest

from repro.kg.cache import artifacts_for
from repro.models.shadowsaint import extract_ego
from repro.sampling.ppr import ppr_top_k
from repro.serve import ExtractionService, ServiceOverloaded
from repro.sparql.endpoint import SparqlEndpoint


def run(coroutine):
    return asyncio.run(coroutine)


def make_service(kg, **kwargs):
    service = ExtractionService(**kwargs)
    service.register("toy", kg)
    return service


def test_register_rejects_duplicates_and_unknown_graphs(toy_kg):
    service = make_service(toy_kg)
    assert service.graphs() == ["toy"]
    with pytest.raises(ValueError):
        service.register("toy", toy_kg)
    with pytest.raises(KeyError):
        run(service.ppr_top_k("nope", 0))


def test_register_warms_the_csr(toy_kg):
    make_service(toy_kg)
    assert artifacts_for(toy_kg).builds >= 1


def test_ppr_matches_scalar_oracle(toy_kg, toy_task):
    service = make_service(toy_kg, max_batch=4, max_delay=0.002)
    targets = [int(t) for t in toy_task.target_nodes]

    async def scenario():
        return await asyncio.gather(
            *(service.ppr_top_k("toy", t, k=8) for t in targets)
        )

    results = run(scenario())
    adjacency = artifacts_for(toy_kg).csr("both")
    for target, result in zip(targets, results):
        assert result == ppr_top_k(adjacency, target, 8)


def test_ego_matches_scalar_oracle(toy_kg, toy_task):
    service = make_service(toy_kg, max_batch=4, max_delay=0.002)
    roots = [int(t) for t in toy_task.target_nodes]

    async def scenario():
        return await asyncio.gather(
            *(service.extract_ego("toy", r, depth=2, fanout=3, salt=5) for r in roots)
        )

    egos = run(scenario())
    for root, ego in zip(roots, egos):
        expected = extract_ego(toy_kg, root, depth=2, fanout=3, salt=5)
        assert np.array_equal(ego.nodes, expected.nodes)
        assert np.array_equal(ego.src, expected.src)
        assert np.array_equal(ego.dst, expected.dst)
        assert np.array_equal(ego.rel, expected.rel)


def test_serial_mode_matches_coalesced_mode(toy_kg, toy_task):
    targets = [int(t) for t in toy_task.target_nodes]

    async def gather(service):
        return await asyncio.gather(
            *(service.ppr_top_k("toy", t) for t in targets)
        )

    coalesced = run(gather(make_service(toy_kg, coalesce=True)))
    serial = run(gather(make_service(toy_kg, coalesce=False)))
    assert coalesced == serial


def test_mixed_parameter_requests_are_not_merged(toy_kg, toy_task):
    service = make_service(toy_kg, max_batch=16, max_delay=0.002)
    target = int(toy_task.target_nodes[0])

    async def scenario():
        return await asyncio.gather(
            service.ppr_top_k("toy", target, k=4),
            service.ppr_top_k("toy", target, k=9),
            service.ppr_top_k("toy", target, k=4, alpha=0.5),
        )

    small, large, halved = run(scenario())
    adjacency = artifacts_for(toy_kg).csr("both")
    assert small == ppr_top_k(adjacency, target, 4)
    assert large == ppr_top_k(adjacency, target, 9)
    assert halved == ppr_top_k(adjacency, target, 4, alpha=0.5)


def test_sparql_facade_matches_sync_endpoint(toy_kg):
    service = make_service(toy_kg)
    query = "select ?s ?p ?o where { ?s ?p ?o }"

    async def scenario():
        return await service.sparql("toy", query), await service.count("toy", query)

    result, count = run(scenario())
    expected = SparqlEndpoint(toy_kg).query(query)
    assert count == expected.num_rows == result.num_rows
    for variable in expected.variables:
        assert result.columns[variable].tolist() == expected.columns[variable].tolist()


def test_overload_rejects_with_retry_after(toy_kg, toy_task):
    # A window that never closes on its own: requests pile up in flight
    # until admission starts shedding.
    service = make_service(toy_kg, max_pending=3, max_batch=1000, max_delay=60.0)
    target = int(toy_task.target_nodes[0])

    async def scenario():
        admitted = [
            asyncio.ensure_future(service.ppr_top_k("toy", target))
            for _ in range(3)
        ]
        await asyncio.sleep(0)  # let the three enter the queue
        with pytest.raises(ServiceOverloaded) as excinfo:
            await service.ppr_top_k("toy", target)
        assert excinfo.value.retry_after > 0
        await service.drain()
        return await asyncio.gather(*admitted)

    results = run(scenario())
    assert len(results) == 3
    snapshot = service.metrics_snapshot()
    assert snapshot["admission"]["rejected"] == 1
    assert snapshot["admission"]["accepted"] == 3
    assert snapshot["admission"]["queue_depth"] == 0  # all drained


def test_metrics_snapshot_shape(toy_kg, toy_task):
    service = make_service(toy_kg, max_batch=4, max_delay=0.002)
    targets = [int(t) for t in toy_task.target_nodes]

    async def scenario():
        await asyncio.gather(*(service.ppr_top_k("toy", t) for t in targets))
        await service.sparql("toy", "select ?s ?p ?o where { ?s ?p ?o }")

    run(scenario())
    snapshot = service.metrics_snapshot()
    assert snapshot["requests"]["ppr"]["completed"] == len(targets)
    assert snapshot["requests"]["sparql"]["completed"] == 1
    assert snapshot["requests"]["ppr"]["p95_ms"] >= snapshot["requests"]["ppr"]["p50_ms"] >= 0
    assert snapshot["coalescing"]["batches"] >= 1
    assert snapshot["coalescing"]["batch_occupancy"] > 1.0  # coalescing happened
    graph = snapshot["graphs"]["toy"]
    assert graph["artifact_cache"]["builds"] >= 1
    assert graph["artifact_cache"]["hits"] >= 1
    assert graph["endpoint"]["requests"] == 1
    assert snapshot["config"]["coalesce"] is True
    # The snapshot is an exportable artifact: must be JSON-serializable.
    import json

    json.dumps(snapshot)


def test_invalid_max_pending_rejected():
    with pytest.raises(ValueError):
        ExtractionService(max_pending=0)
