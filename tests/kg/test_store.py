"""Artifact store: round-trip fidelity, bit-exact serving, structured failures.

The store's contract (``repro/kg/store.py``) in test form:

* save → open round-trips every section exactly — triple columns, node
  types, vocabularies, all three CSR projections and all six hexastore
  orderings — with identical dtypes;
* answers computed over a mapped store (PPR, ego nets, SPARQL) are
  bit-identical to the in-memory graph;
* the mapped arrays are write-protected and accounted as ``mapped``
  bytes, never ``resident`` ones;
* every structural failure mode — missing file, zero-byte file, wrong
  magic, unsupported version, corrupted header, inconsistent or truncated
  sections — raises :class:`ArtifactStoreError` with a diagnosable
  message, never garbage arrays.
"""

import json
import mmap
import os
import zlib

import numpy as np
import pytest

from repro.kg.cache import artifacts_for
from repro.kg.graph import KnowledgeGraph
from repro.kg.hexastore import _ORDERS
from repro.kg.store import (
    ARTIFACT_FILENAME,
    ArtifactStoreError,
    open_artifacts,
    save_artifacts,
)
from repro.kg.triples import TripleStore
from repro.kg.vocabulary import Vocabulary


def _store_path(directory) -> str:
    return os.path.join(str(directory), ARTIFACT_FILENAME)


def _literal_kg() -> KnowledgeGraph:
    """A small graph that also exercises the literal sections."""
    node_vocab = Vocabulary(name="nodes")
    class_vocab = Vocabulary(name="classes")
    relation_vocab = Vocabulary(name="relations")
    literal_vocab = Vocabulary(name="literals")
    for i in range(4):
        node_vocab.add(f"n{i}")
    class_vocab.add("Thing")
    relation_vocab.add("linksTo")
    relation_vocab.add("hasLabel")
    for text in ("alpha", "beta"):
        literal_vocab.add(text)
    return KnowledgeGraph(
        node_vocab=node_vocab,
        class_vocab=class_vocab,
        relation_vocab=relation_vocab,
        node_types=np.zeros(4, dtype=np.int64),
        triples=TripleStore(
            np.array([0, 1, 2]), np.array([0, 0, 0]), np.array([1, 2, 3])
        ),
        literal_vocab=literal_vocab,
        literal_triples=TripleStore(
            np.array([0, 3]), np.array([1, 1]), np.array([0, 1])
        ),
        name="literal-kg",
    )


# -- round trip ---------------------------------------------------------------


def test_round_trip_all_sections_equal(tmp_path, mag_tiny):
    kg = mag_tiny.kg
    manifest = save_artifacts(kg, str(tmp_path))
    assert manifest["path"] == _store_path(tmp_path)
    assert manifest["nbytes"] == os.path.getsize(manifest["path"])

    opened = open_artifacts(str(tmp_path))
    clone = opened.kg
    assert clone.name == kg.name
    np.testing.assert_array_equal(clone.node_types, kg.node_types)
    for column in ("s", "p", "o"):
        np.testing.assert_array_equal(
            getattr(clone.triples, column), getattr(kg.triples, column)
        )
        np.testing.assert_array_equal(
            getattr(clone.literal_triples, column), getattr(kg.literal_triples, column)
        )
    for attribute in ("node_vocab", "class_vocab", "relation_vocab", "literal_vocab"):
        assert list(getattr(clone, attribute)) == list(getattr(kg, attribute))

    source = artifacts_for(kg)
    for direction in ("both", "out", "in"):
        expected = source.csr(direction)
        mapped = opened.csr(direction)
        assert mapped.shape == expected.shape
        for field in ("data", "indices", "indptr"):
            np.testing.assert_array_equal(getattr(mapped, field), getattr(expected, field))
            assert getattr(mapped, field).dtype == getattr(expected, field).dtype

    reference = kg.hexastore.materialize()
    for order in _ORDERS:
        expected_index = reference._index(order)
        mapped_index = clone.hexastore._index(order)
        np.testing.assert_array_equal(mapped_index.perm, expected_index.perm)
        for level in range(3):
            np.testing.assert_array_equal(
                mapped_index.key(level), expected_index.key(level)
            )


def test_round_trip_literal_sections(tmp_path):
    kg = _literal_kg()
    save_artifacts(kg, str(tmp_path))
    clone = open_artifacts(str(tmp_path)).kg
    assert list(clone.literal_vocab) == ["alpha", "beta"]
    np.testing.assert_array_equal(clone.literal_triples.s, kg.literal_triples.s)
    np.testing.assert_array_equal(clone.literal_triples.o, kg.literal_triples.o)


def test_save_refuses_newline_terms(tmp_path):
    kg = KnowledgeGraph.build(
        [("good", "A"), ("bad\nname", "A")], [("good", "r", "bad\nname")], name="nl"
    )
    with pytest.raises(ArtifactStoreError, match="newline"):
        save_artifacts(kg, str(tmp_path))
    assert not os.path.exists(_store_path(tmp_path))


def test_save_overwrites_atomically(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))
    first = os.path.getsize(_store_path(tmp_path))
    manifest = save_artifacts(toy_kg, str(tmp_path))
    assert os.path.getsize(_store_path(tmp_path)) == first == manifest["nbytes"]
    assert not os.path.exists(_store_path(tmp_path) + ".tmp")


# -- bit-exact answers over the mapping ---------------------------------------


def test_mapped_answers_bit_identical(tmp_path, mag_tiny):
    from repro.models.shadowsaint import extract_ego
    from repro.sampling.ppr import ppr_top_k
    from repro.sparql.executor import QueryExecutor
    from repro.sparql.parser import parse_query

    kg = mag_tiny.kg
    save_artifacts(kg, str(tmp_path))
    opened = open_artifacts(str(tmp_path))
    clone = opened.kg

    rng = np.random.default_rng(11)
    targets = [int(t) for t in rng.choice(kg.num_nodes, size=12, replace=False)]

    adjacency = artifacts_for(kg).csr("both")
    for target in targets:
        assert ppr_top_k(opened.csr("both"), target, 8) == ppr_top_k(adjacency, target, 8)

    for target in targets:
        expected = extract_ego(kg, target, depth=2, fanout=4, salt=3)
        mapped = extract_ego(clone, target, depth=2, fanout=4, salt=3)
        np.testing.assert_array_equal(mapped.nodes, expected.nodes)
        np.testing.assert_array_equal(mapped.src, expected.src)
        np.testing.assert_array_equal(mapped.dst, expected.dst)
        np.testing.assert_array_equal(mapped.rel, expected.rel)

    query = parse_query("select ?s ?p ?o where { ?s ?p ?o } limit 64")
    expected_rows = QueryExecutor(kg).evaluate(query)
    mapped_rows = QueryExecutor(clone).evaluate(query)
    assert mapped_rows.variables == expected_rows.variables
    for variable in expected_rows.variables:
        np.testing.assert_array_equal(
            mapped_rows.columns[variable], expected_rows.columns[variable]
        )


def test_opened_artifacts_attach_to_their_graph(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))
    opened = open_artifacts(str(tmp_path))
    assert artifacts_for(opened.kg) is opened
    assert opened.store_path == _store_path(tmp_path)
    # The CSR projections are pre-populated: using them is a hit, not a build.
    opened.csr("both")
    assert opened.builds == 0
    assert opened.hits >= 1


# -- write protection and memory accounting -----------------------------------


def test_mapped_arrays_are_write_protected(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))
    opened = open_artifacts(str(tmp_path))
    clone = opened.kg
    with pytest.raises(ValueError):
        clone.triples.s[0] = 99
    with pytest.raises(ValueError):
        opened.csr("both").data[0] = 99.0
    with pytest.raises(ValueError):
        clone.hexastore._index("spo").perm[0] = 99


def test_mapped_vs_resident_byte_accounting(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))
    opened = open_artifacts(str(tmp_path))
    # Everything the store carries is mapped, nothing resident.
    assert opened.nbytes() == 0
    assert opened.mapped_nbytes() > 0

    # The in-memory source graph is the mirror image.
    source = artifacts_for(toy_kg)
    source.warm(("csr",))
    assert source.nbytes() > 0
    assert source.mapped_nbytes() == 0

    # Heap-allocated derivatives on a mapped graph count as resident.
    opened.hetero()
    assert opened.nbytes() > 0


# -- structured failure modes -------------------------------------------------


def _corrupt(path: str, offset: int, value: bytes) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(value)


def test_missing_store_is_a_structured_error(tmp_path):
    with pytest.raises(ArtifactStoreError, match="build-artifacts"):
        open_artifacts(str(tmp_path))


def test_zero_byte_file(tmp_path):
    open(_store_path(tmp_path), "wb").close()
    with pytest.raises(ArtifactStoreError, match="cannot map"):
        open_artifacts(str(tmp_path))


def test_truncated_preamble(tmp_path):
    with open(_store_path(tmp_path), "wb") as handle:
        handle.write(b"TOSG")
    with pytest.raises(ArtifactStoreError, match="preamble"):
        open_artifacts(str(tmp_path))


def test_bad_magic(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))
    _corrupt(_store_path(tmp_path), 0, b"NOTAFILE")
    with pytest.raises(ArtifactStoreError, match="magic"):
        open_artifacts(str(tmp_path))


def test_version_mismatch(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))
    _corrupt(_store_path(tmp_path), 8, np.asarray([99], dtype="<u4").tobytes())
    with pytest.raises(ArtifactStoreError, match="version 99"):
        open_artifacts(str(tmp_path))


def test_header_checksum_detects_corruption(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))
    _corrupt(_store_path(tmp_path), 24, b"X")  # inside the JSON header
    with pytest.raises(ArtifactStoreError, match="checksum"):
        open_artifacts(str(tmp_path))


def test_header_overrun_is_truncation(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))
    huge = np.asarray([1 << 30], dtype="<u4").tobytes()
    _corrupt(_store_path(tmp_path), 12, huge)  # header-length word
    with pytest.raises(ArtifactStoreError, match="truncated"):
        open_artifacts(str(tmp_path))


def test_truncated_sections(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))
    path = _store_path(tmp_path)
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) // 2)
    with pytest.raises(ArtifactStoreError, match="truncated"):
        open_artifacts(str(tmp_path))


def _rewrite_header(path: str, mutate) -> None:
    """Parse the artifact header, apply ``mutate``, re-stamp length + CRC."""
    with open(path, "rb") as handle:
        raw = handle.read()
    length = int(np.frombuffer(raw, dtype="<u4", count=1, offset=12)[0])
    header = json.loads(raw[20 : 20 + length].decode("utf-8"))
    mutate(header)
    new_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    body_start = (20 + length + 63) // 64 * 64
    new_start = (20 + len(new_bytes) + 63) // 64 * 64
    with open(path, "wb") as handle:
        handle.write(raw[:8])
        words = [1, len(new_bytes), zlib.crc32(new_bytes)]
        handle.write(np.asarray(words, dtype="<u4").tobytes())
        handle.write(new_bytes)
        handle.write(b"\x00" * (new_start - 20 - len(new_bytes)))
        handle.write(raw[body_start:])


def test_internally_inconsistent_section_rejected(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))

    def lie_about_nbytes(header):
        header["sections"]["triples/s"]["nbytes"] += 8

    _rewrite_header(_store_path(tmp_path), lie_about_nbytes)
    with pytest.raises(ArtifactStoreError, match="internally inconsistent"):
        open_artifacts(str(tmp_path))


def test_missing_section_rejected(tmp_path, toy_kg):
    save_artifacts(toy_kg, str(tmp_path))

    def drop_triples(header):
        del header["sections"]["triples/p"]

    _rewrite_header(_store_path(tmp_path), drop_triples)
    with pytest.raises(ArtifactStoreError, match="inconsistent artifact contents"):
        open_artifacts(str(tmp_path))


def test_views_share_the_file_mapping(tmp_path, toy_kg):
    """The arrays really are zero-copy views into one shared mapping."""
    save_artifacts(toy_kg, str(tmp_path))
    opened = open_artifacts(str(tmp_path))

    def mapping_of(array):
        base = array
        while base is not None:
            if isinstance(base, memoryview):
                return base.obj
            base = getattr(base, "base", None)
        return None

    first = mapping_of(opened.kg.triples.s)
    assert isinstance(first, mmap.mmap)
    assert mapping_of(opened.csr("both").indptr) is first
    assert mapping_of(opened.kg.hexastore._index("pos").perm) is first
