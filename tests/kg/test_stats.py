"""Table I statistics."""

from repro.kg.stats import compute_statistics, _humanize


def test_stats_counts(toy_kg):
    stats = compute_statistics(toy_kg)
    assert stats.num_nodes == 15
    assert stats.num_edges == 13
    assert stats.num_node_types == 4
    assert stats.num_edge_types == 4
    assert stats.max_degree >= 3
    assert 0 < stats.density < 1


def test_humanize():
    assert _humanize(42_400_000) == "42.4M"
    assert _humanize(123_000) == "123.0K"
    assert _humanize(999) == "999"


def test_as_row_shape(toy_kg):
    row = compute_statistics(toy_kg).as_row()
    assert len(row) == 5
    assert row[0] == "toy"
