"""Serialization round-trips."""

import pytest

from repro.kg.io import load_kg, read_ntriples, save_kg, write_ntriples


def _same_graph(a, b):
    nodes_a = {
        (a.node_vocab.term(i), a.class_vocab.term(int(a.node_types[i]))) for i in range(a.num_nodes)
    }
    nodes_b = {
        (b.node_vocab.term(i), b.class_vocab.term(int(b.node_types[i]))) for i in range(b.num_nodes)
    }
    triples_a = {
        (a.node_vocab.term(s), a.relation_vocab.term(p), a.node_vocab.term(o))
        for s, p, o in a.triples
    }
    triples_b = {
        (b.node_vocab.term(s), b.relation_vocab.term(p), b.node_vocab.term(o))
        for s, p, o in b.triples
    }
    return nodes_a == nodes_b and triples_a == triples_b


def test_tsv_roundtrip(toy_kg, tmp_path):
    save_kg(toy_kg, str(tmp_path / "kg"))
    loaded = load_kg(str(tmp_path / "kg"), name="toy")
    assert _same_graph(toy_kg, loaded)


def test_ntriples_roundtrip(toy_kg, tmp_path):
    path = str(tmp_path / "kg.nt")
    write_ntriples(toy_kg, path)
    loaded = read_ntriples(path, name="toy")
    assert _same_graph(toy_kg, loaded)


def test_ntriples_malformed_line_rejected(tmp_path):
    path = tmp_path / "bad.nt"
    path.write_text("<a> <b> <c>\n")  # missing trailing dot
    with pytest.raises(ValueError):
        read_ntriples(str(path))


def test_ntriples_untyped_node_gets_default_class(tmp_path):
    path = tmp_path / "untyped.nt"
    path.write_text("<a> <likes> <b> .\n")
    kg = read_ntriples(str(path))
    assert kg.num_nodes == 2
    assert "owl:Thing" in kg.class_vocab


def test_ntriples_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "comments.nt"
    path.write_text("# header\n\n<a> <rdf:type> <T> .\n<a> <r> <b> .\n")
    kg = read_ntriples(str(path))
    assert kg.num_edges == 1
    assert kg.class_vocab.id("T") == int(kg.node_types[kg.node_vocab.id("a")])
