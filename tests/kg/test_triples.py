"""TripleStore: columnar storage semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.kg.triples import TripleStore

triple_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=20),
    ),
    max_size=60,
)


def test_empty_store():
    store = TripleStore()
    assert len(store) == 0
    assert list(store) == []
    assert len(store.unique_nodes()) == 0


def test_from_triples_and_iteration():
    store = TripleStore.from_triples([(1, 2, 3), (4, 5, 6)])
    assert len(store) == 2
    assert list(store) == [(1, 2, 3), (4, 5, 6)]
    assert store[1] == (4, 5, 6)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        TripleStore([1, 2], [1], [1, 2])


def test_partial_columns_rejected():
    with pytest.raises(ValueError):
        TripleStore([1], None, None)


def test_append_concatenates():
    a = TripleStore.from_triples([(1, 0, 2)])
    b = TripleStore.from_triples([(3, 0, 4)])
    merged = a.append(b)
    assert list(merged) == [(1, 0, 2), (3, 0, 4)]
    assert len(a) == 1  # append is non-destructive


def test_select_and_mask():
    store = TripleStore.from_triples([(0, 0, 1), (1, 0, 2), (2, 0, 3)])
    assert list(store.select(np.asarray([2, 0]))) == [(2, 0, 3), (0, 0, 1)]
    assert list(store.mask(np.asarray([True, False, True]))) == [(0, 0, 1), (2, 0, 3)]


def test_deduplicated_removes_duplicates():
    store = TripleStore.from_triples([(1, 0, 2), (1, 0, 2), (3, 0, 4)])
    assert store.deduplicated().to_set() == {(1, 0, 2), (3, 0, 4)}


def test_unique_nodes_and_predicates():
    store = TripleStore.from_triples([(5, 1, 2), (2, 3, 7)])
    assert store.unique_nodes().tolist() == [2, 5, 7]
    assert store.unique_predicates().tolist() == [1, 3]


def test_equality():
    a = TripleStore.from_triples([(1, 0, 2)])
    b = TripleStore.from_triples([(1, 0, 2)])
    c = TripleStore.from_triples([(2, 0, 1)])
    assert a == b
    assert a != c


def test_nbytes_positive():
    store = TripleStore.from_triples([(1, 0, 2)])
    assert store.nbytes() == 3 * 8


@given(triple_lists)
def test_dedup_idempotent_property(triples):
    store = TripleStore.from_triples(triples)
    once = store.deduplicated()
    twice = once.deduplicated()
    assert once.to_set() == set(triples)
    assert once == twice


@given(triple_lists, triple_lists)
def test_append_preserves_multiset_property(left, right):
    merged = TripleStore.from_triples(left).append(TripleStore.from_triples(right))
    assert len(merged) == len(left) + len(right)
    assert merged.deduplicated().to_set() == set(left) | set(right)
