"""Vocabulary: interning, lookup, restriction."""

import pytest
from hypothesis import given, strategies as st

from repro.kg.vocabulary import Vocabulary


def test_add_assigns_dense_ids():
    vocab = Vocabulary()
    assert vocab.add("a") == 0
    assert vocab.add("b") == 1
    assert vocab.add("a") == 0
    assert len(vocab) == 2


def test_term_and_id_are_inverse():
    vocab = Vocabulary(["x", "y", "z"])
    for term in ("x", "y", "z"):
        assert vocab.term(vocab.id(term)) == term


def test_unknown_term_raises_keyerror():
    vocab = Vocabulary()
    with pytest.raises(KeyError):
        vocab.id("missing")


def test_get_returns_default_for_unknown():
    vocab = Vocabulary(["a"])
    assert vocab.get("a") == 0
    assert vocab.get("b") is None
    assert vocab.get("b", -1) == -1


def test_negative_id_rejected():
    vocab = Vocabulary(["a"])
    with pytest.raises(IndexError):
        vocab.term(-1)


def test_contains_and_iter():
    vocab = Vocabulary(["a", "b"])
    assert "a" in vocab
    assert "c" not in vocab
    assert list(vocab) == ["a", "b"]


def test_add_many_returns_ids_in_order():
    vocab = Vocabulary()
    assert vocab.add_many(["a", "b", "a"]) == [0, 1, 0]


def test_copy_is_independent():
    vocab = Vocabulary(["a"])
    clone = vocab.copy()
    clone.add("b")
    assert len(vocab) == 1
    assert len(clone) == 2


def test_restrict_compacts_ids():
    vocab = Vocabulary(["a", "b", "c", "d"])
    restricted, mapping = vocab.restrict([1, 3])
    assert len(restricted) == 2
    assert restricted.term(mapping[1]) == "b"
    assert restricted.term(mapping[3]) == "d"


def test_terms_vectorised():
    vocab = Vocabulary(["a", "b", "c"])
    assert vocab.terms([2, 0]) == ["c", "a"]


@given(st.lists(st.text(min_size=1, max_size=10)))
def test_roundtrip_property(terms):
    """Every interned term maps back to itself through its id."""
    vocab = Vocabulary()
    ids = [vocab.add(t) for t in terms]
    for term, term_id in zip(terms, ids):
        assert vocab.term(term_id) == term
        assert vocab.id(term) == vocab.add(term)
    assert len(vocab) == len(set(terms))


@given(st.lists(st.text(min_size=1, max_size=6), min_size=1, unique=True), st.data())
def test_restrict_preserves_terms_property(terms, data):
    vocab = Vocabulary(terms)
    keep = data.draw(
        st.lists(st.integers(min_value=0, max_value=len(terms) - 1), unique=True)
    )
    restricted, mapping = vocab.restrict(keep)
    assert len(restricted) == len(keep)
    for old_id in keep:
        assert restricted.term(mapping[old_id]) == vocab.term(old_id)
