"""GraphArtifacts: one shared construction point per graph."""

import numpy as np

from repro.kg.cache import artifacts_for, clear_artifacts
from repro.kg.graph import KnowledgeGraph
from repro.transform.adjacency import build_csr


def _kg(name="cache-kg"):
    nodes = [(f"n{i}", "A" if i % 2 else "B") for i in range(6)]
    triples = [("n0", "r", "n1"), ("n1", "r", "n2"), ("n3", "s", "n4")]
    return KnowledgeGraph.build(nodes, triples, name=name)


def test_artifacts_are_shared_per_graph():
    kg = _kg()
    assert artifacts_for(kg) is artifacts_for(kg)
    other = _kg("other")
    assert artifacts_for(kg) is not artifacts_for(other)


def test_csr_memoized_per_direction_and_correct():
    kg = _kg()
    artifacts = artifacts_for(kg)
    both = artifacts.csr("both")
    assert artifacts.csr("both") is both
    assert (both != build_csr(kg, direction="both")).nnz == 0
    out = artifacts.csr("out")
    assert out is not both
    assert (out != build_csr(kg, direction="out")).nnz == 0
    assert np.array_equal(artifacts.walk_engine("both").degrees, np.diff(both.indptr))


def test_walk_engine_shares_cached_csr():
    kg = _kg()
    artifacts = artifacts_for(kg)
    engine = artifacts.walk_engine("both")
    assert artifacts.walk_engine("both") is engine
    assert engine.adjacency is artifacts.csr("both")


def test_samplers_share_one_engine_and_adjacency():
    from repro.core.brw import BiasedRandomWalkSampler
    from repro.core.ibs import InfluenceBasedSampler
    from repro.sampling.urw import UniformRandomWalkSampler

    kg = _kg()
    urw = UniformRandomWalkSampler(kg)
    brw = BiasedRandomWalkSampler(kg)
    ibs = InfluenceBasedSampler(kg)
    assert urw.engine is brw.engine
    assert ibs.adjacency is urw.engine.adjacency


def test_hetero_memoized_per_flags():
    kg = _kg()
    artifacts = artifacts_for(kg)
    stack = artifacts.hetero()
    assert artifacts.hetero() is stack
    assert artifacts.hetero(add_reverse=False) is not stack
    assert stack.num_relations == 2 * kg.num_edge_types


def test_hexastore_is_the_graphs_index():
    kg = _kg()
    assert artifacts_for(kg).hexastore is kg.hexastore


def test_nbytes_grows_with_built_artifacts_and_clear_resets():
    kg = _kg()
    artifacts = artifacts_for(kg)
    assert artifacts.nbytes() == 0
    artifacts.csr("both")
    after_csr = artifacts.nbytes()
    assert after_csr > 0
    artifacts.hetero()
    assert artifacts.nbytes() > after_csr
    artifacts.clear()
    assert artifacts.nbytes() >= 0  # hexastore (if built) survives on the KG
    assert artifacts.csr("both") is not None


def test_registry_entries_die_with_their_graph():
    import gc
    import weakref

    kg = _kg()
    reference = weakref.ref(artifacts_for(kg))
    del kg
    gc.collect()
    assert reference() is None


def test_clear_artifacts_forgets_graph():
    kg = _kg()
    first = artifacts_for(kg)
    clear_artifacts(kg)
    assert artifacts_for(kg) is not first
