"""GraphArtifacts: one shared construction point per graph."""

import numpy as np

from repro.kg.cache import artifacts_for, clear_artifacts
from repro.kg.graph import KnowledgeGraph
from repro.transform.adjacency import build_csr


def _kg(name="cache-kg"):
    nodes = [(f"n{i}", "A" if i % 2 else "B") for i in range(6)]
    triples = [("n0", "r", "n1"), ("n1", "r", "n2"), ("n3", "s", "n4")]
    return KnowledgeGraph.build(nodes, triples, name=name)


def test_artifacts_are_shared_per_graph():
    kg = _kg()
    assert artifacts_for(kg) is artifacts_for(kg)
    other = _kg("other")
    assert artifacts_for(kg) is not artifacts_for(other)


def test_csr_memoized_per_direction_and_correct():
    kg = _kg()
    artifacts = artifacts_for(kg)
    both = artifacts.csr("both")
    assert artifacts.csr("both") is both
    assert (both != build_csr(kg, direction="both")).nnz == 0
    out = artifacts.csr("out")
    assert out is not both
    assert (out != build_csr(kg, direction="out")).nnz == 0
    assert np.array_equal(artifacts.walk_engine("both").degrees, np.diff(both.indptr))


def test_walk_engine_shares_cached_csr():
    kg = _kg()
    artifacts = artifacts_for(kg)
    engine = artifacts.walk_engine("both")
    assert artifacts.walk_engine("both") is engine
    assert engine.adjacency is artifacts.csr("both")


def test_samplers_share_one_engine_and_adjacency():
    from repro.core.brw import BiasedRandomWalkSampler
    from repro.core.ibs import InfluenceBasedSampler
    from repro.sampling.urw import UniformRandomWalkSampler

    kg = _kg()
    urw = UniformRandomWalkSampler(kg)
    brw = BiasedRandomWalkSampler(kg)
    ibs = InfluenceBasedSampler(kg)
    assert urw.engine is brw.engine
    assert ibs.adjacency is urw.engine.adjacency


def test_hetero_memoized_per_flags():
    kg = _kg()
    artifacts = artifacts_for(kg)
    stack = artifacts.hetero()
    assert artifacts.hetero() is stack
    assert artifacts.hetero(add_reverse=False) is not stack
    assert stack.num_relations == 2 * kg.num_edge_types


def test_hexastore_is_the_graphs_index():
    kg = _kg()
    assert artifacts_for(kg).hexastore is kg.hexastore


def test_nbytes_grows_with_built_artifacts_and_clear_resets():
    kg = _kg()
    artifacts = artifacts_for(kg)
    assert artifacts.nbytes() == 0
    artifacts.csr("both")
    after_csr = artifacts.nbytes()
    assert after_csr > 0
    artifacts.hetero()
    assert artifacts.nbytes() > after_csr
    artifacts.clear()
    assert artifacts.nbytes() >= 0  # hexastore (if built) survives on the KG
    assert artifacts.csr("both") is not None


def test_registry_entries_die_with_their_graph():
    import gc
    import weakref

    kg = _kg()
    reference = weakref.ref(artifacts_for(kg))
    del kg
    gc.collect()
    assert reference() is None


def test_clear_artifacts_forgets_graph():
    kg = _kg()
    first = artifacts_for(kg)
    clear_artifacts(kg)
    assert artifacts_for(kg) is not first


def test_warm_builds_the_named_artifacts():
    kg = _kg()
    artifacts = artifacts_for(kg)
    assert artifacts.builds == 0
    artifacts.warm(("csr", "walk", "hexastore", "hetero"))
    # csr("both"), the walk engine, and the hetero stack each count one
    # build; the walk engine reuses the warm CSR (a hit, not a build).
    assert artifacts.builds == 3
    assert artifacts.hits >= 1
    before = artifacts.builds
    artifacts.warm(("csr",))  # idempotent: warm again, build nothing
    assert artifacts.builds == before
    import pytest

    with pytest.raises(ValueError, match="unknown artifact kind"):
        artifacts.warm(("nope",))


def test_pickling_strips_derived_state_and_artifacts():
    """Shipping a graph to a pool worker must carry raw triples only:
    caches (hexastore, degrees, attached GraphArtifacts) are process-local
    and rebuild on the receiving side."""
    import pickle

    kg = _kg()
    artifacts = artifacts_for(kg)
    artifacts.warm(("csr", "hexastore"))
    kg.out_degree()
    kg.nodes_of_type(0)

    clone = pickle.loads(pickle.dumps(kg))
    assert clone._hexastore is None
    assert clone._out_degree is None and clone._in_degree is None
    assert clone._nodes_by_type is None
    assert not hasattr(clone, "_graph_artifacts")
    # The clone starts a fresh, independent artifact cache ...
    clone_artifacts = artifacts_for(clone)
    assert clone_artifacts is not artifacts
    assert clone_artifacts.builds == 0
    # ... and the raw graph round-tripped exactly.
    assert clone.name == kg.name
    assert clone.num_nodes == kg.num_nodes and clone.num_edges == kg.num_edges
    np.testing.assert_array_equal(clone.node_types, kg.node_types)
    np.testing.assert_array_equal(clone.triples.s, kg.triples.s)
    np.testing.assert_array_equal(clone.triples.p, kg.triples.p)
    np.testing.assert_array_equal(clone.triples.o, kg.triples.o)
    # Rebuilt-on-demand state still works (fresh lock, lazy hexastore).
    assert clone.out_neighbors(0).tolist() == kg.out_neighbors(0).tolist()
