"""Schema summaries derived from instance triples."""

from repro.kg.schema import summarize_schema


def test_class_and_relation_counts(toy_kg):
    schema = summarize_schema(toy_kg)
    paper = toy_kg.class_vocab.id("Paper")
    movie = toy_kg.class_vocab.id("Movie")
    assert schema.class_counts[paper] == 6
    assert schema.class_counts[movie] == 4
    has_author = toy_kg.relation_vocab.id("hasAuthor")
    assert schema.relation_counts[has_author] == 6


def test_schema_triples(toy_kg):
    schema = summarize_schema(toy_kg)
    paper = toy_kg.class_vocab.id("Paper")
    author = toy_kg.class_vocab.id("Author")
    has_author = toy_kg.relation_vocab.id("hasAuthor")
    assert schema.schema_triples[(paper, has_author, author)] == 6


def test_relations_between(toy_kg):
    schema = summarize_schema(toy_kg)
    paper = toy_kg.class_vocab.id("Paper")
    venue = toy_kg.class_vocab.id("Venue")
    published = toy_kg.relation_vocab.id("publishedIn")
    assert schema.relations_between(paper, venue) == [published]
    assert schema.relations_between(venue, paper) == []


def test_out_in_relations(toy_kg):
    schema = summarize_schema(toy_kg)
    paper = toy_kg.class_vocab.id("Paper")
    out = schema.out_relations(paper)
    assert toy_kg.relation_vocab.id("hasAuthor") in out
    assert toy_kg.relation_vocab.id("cites") in out
    author = toy_kg.class_vocab.id("Author")
    assert schema.in_relations(author) == [toy_kg.relation_vocab.id("hasAuthor")]


def test_metapaths_enumeration(toy_kg):
    schema = summarize_schema(toy_kg)
    paper = toy_kg.class_vocab.id("Paper")
    one_hop = schema.metapaths(paper, 1)
    # Paper ->hasAuthor Author, ->publishedIn Venue, ->cites Paper.
    assert len(one_hop) == 3
    two_hop = schema.metapaths(paper, 2)
    # Only Paper->cites->Paper can be extended (by 3 relations).
    assert len(two_hop) == 3
    for path in two_hop:
        assert len(path) == 5  # c0, r1, c1, r2, c2
