"""Epochal snapshots: every incremental merge bit-exact vs a cold rebuild.

The contract under test (``repro/kg/epoch.py``): a :class:`GraphEpoch`
built by *extending* the previous epoch with a delta must be
indistinguishable — CSR projections, hexastore orderings, degrees,
SPARQL results, kernel answers — from a graph rebuilt from scratch with
the same content (``cold_rebuild()``, the oracle).  Randomized insert
schedules drive the merges through many shapes; the delta-aware kernel
caches must invalidate exactly by dirty-node support intersection.
"""

import numpy as np
import pytest

from repro.kg.cache import artifacts_for
from repro.kg.epoch import GraphEpoch, LiveGraph
from repro.kg.triples import TripleStore
from repro.models.shadowsaint import extract_ego_batch
from repro.sampling.ppr import batch_ppr_top_k
from repro.sparql.endpoint import SparqlEndpoint

ALL_TRIPLES = "select ?s ?p ?o where { ?s ?p ?o }"


def random_delta(kg, rows, rng):
    """``rows`` random in-range [s, p, o] rows (ingest never mints ids)."""
    return np.stack(
        [
            rng.integers(0, kg.num_nodes, rows),
            rng.integers(0, kg.num_edge_types, rows),
            rng.integers(0, kg.num_nodes, rows),
        ],
        axis=1,
    ).astype(np.int64)


def warm(kg):
    """Build the artifacts an epoch carries forward incrementally."""
    artifacts_for(kg).csr("both")
    artifacts_for(kg).csr("out")
    kg.hexastore.materialize()
    kg.out_degree()
    kg.in_degree()


def assert_epoch_matches_cold_rebuild(epoch):
    cold = epoch.cold_rebuild()
    assert np.array_equal(epoch.kg.triples.s, cold.triples.s)
    assert np.array_equal(epoch.kg.triples.p, cold.triples.p)
    assert np.array_equal(epoch.kg.triples.o, cold.triples.o)
    for direction in ("both", "out", "in"):
        merged = artifacts_for(epoch.kg).csr(direction)
        rebuilt = artifacts_for(cold).csr(direction)
        assert np.array_equal(merged.indptr, rebuilt.indptr), direction
        assert np.array_equal(merged.indices, rebuilt.indices), direction
        assert np.array_equal(merged.data, rebuilt.data), direction
    cold.hexastore.materialize()
    for name, index in epoch.kg.hexastore._indices.items():
        assert np.array_equal(
            index.perm, cold.hexastore._indices[name].perm
        ), name
    assert np.array_equal(epoch.kg.out_degree(), cold.out_degree())
    assert np.array_equal(epoch.kg.in_degree(), cold.in_degree())


def test_randomized_insert_schedule_stays_bit_exact(toy_kg):
    rng = np.random.default_rng(7)
    warm(toy_kg)
    epoch = GraphEpoch.initial(toy_kg)
    for round_number in range(6):
        rows = int(rng.integers(1, 9))
        arr = random_delta(toy_kg, rows, rng)
        epoch = epoch.extend(TripleStore(arr[:, 0], arr[:, 1], arr[:, 2]))
        assert epoch.number == round_number + 1
        assert_epoch_matches_cold_rebuild(epoch)


def test_extend_off_a_lazy_base_builds_correctly(toy_kg):
    # No pre-built artifacts on the base: nothing to merge incrementally,
    # the merged graph must still build everything lazily and correctly.
    rng = np.random.default_rng(11)
    epoch = GraphEpoch.initial(toy_kg)
    arr = random_delta(toy_kg, 5, rng)
    epoch = epoch.extend(TripleStore(arr[:, 0], arr[:, 1], arr[:, 2]))
    assert_epoch_matches_cold_rebuild(epoch)


def test_sparql_results_identical_on_merged_epoch(toy_kg):
    rng = np.random.default_rng(13)
    warm(toy_kg)
    epoch = GraphEpoch.initial(toy_kg)
    arr = random_delta(toy_kg, 6, rng)
    epoch = epoch.extend(TripleStore(arr[:, 0], arr[:, 1], arr[:, 2]))
    merged = SparqlEndpoint(epoch.kg).query(ALL_TRIPLES)
    rebuilt = SparqlEndpoint(epoch.cold_rebuild()).query(ALL_TRIPLES)
    assert list(merged.variables) == list(rebuilt.variables)
    for variable in merged.variables:
        assert np.array_equal(merged.columns[variable], rebuilt.columns[variable])


def test_compact_reuses_the_merged_graph(toy_kg):
    rng = np.random.default_rng(17)
    epoch = GraphEpoch.initial(toy_kg)
    arr = random_delta(toy_kg, 4, rng)
    extended = epoch.extend(TripleStore(arr[:, 0], arr[:, 1], arr[:, 2]))
    compacted = extended.compact()
    assert compacted.number == extended.number + 1
    assert compacted.kg is extended.kg  # O(1): nothing is recomputed
    assert compacted.base_kg is extended.kg
    assert compacted.delta_rows == 0 and extended.delta_rows == 4


def test_compact_to_disk_writes_a_loadable_store(toy_kg, tmp_path):
    from repro.kg.store import open_artifacts

    rng = np.random.default_rng(19)
    warm(toy_kg)
    epoch = GraphEpoch.initial(toy_kg)
    arr = random_delta(toy_kg, 4, rng)
    epoch = epoch.extend(TripleStore(arr[:, 0], arr[:, 1], arr[:, 2]))
    epoch = epoch.compact(out_dir=str(tmp_path / "store"))
    mapped = open_artifacts(str(tmp_path / "store"))
    assert np.array_equal(mapped.kg.triples.s, epoch.kg.triples.s)
    assert np.array_equal(mapped.kg.triples.p, epoch.kg.triples.p)
    assert np.array_equal(mapped.kg.triples.o, epoch.kg.triples.o)


# -- LiveGraph: validation, the ring, the policy ------------------------------


def test_validate_triples_rejects_id_minting_and_bad_shapes(toy_kg):
    live = LiveGraph(toy_kg)
    with pytest.raises(ValueError, match="does not mint new nodes"):
        live.ingest([[toy_kg.num_nodes, 0, 0]])
    with pytest.raises(ValueError, match="does not mint new relations"):
        live.ingest([[0, toy_kg.num_edge_types, 1]])
    with pytest.raises(ValueError, match=r"shaped \(n, 3\)"):
        live.ingest([[0, 0]])
    with pytest.raises(ValueError, match="integer"):
        live.ingest([["s", "p", "o"]])
    assert live.epoch.number == 0  # nothing was applied


def test_empty_ingest_is_a_noop(toy_kg):
    live = LiveGraph(toy_kg)
    result = live.ingest([])
    assert result == {
        "added": 0, "epoch": 0, "delta_rows": 0, "compacted": False,
    }
    assert live.epoch.number == 0


def test_compact_every_policy_folds_the_delta(toy_kg):
    live = LiveGraph(toy_kg, compact_every=6)
    rng = np.random.default_rng(23)
    first = live.ingest(random_delta(toy_kg, 3, rng))
    assert first == {"added": 3, "epoch": 1, "delta_rows": 3, "compacted": False}
    second = live.ingest(random_delta(toy_kg, 3, rng))  # reaches the bound
    assert second == {"added": 3, "epoch": 2, "delta_rows": 0, "compacted": True}
    assert live.stats()["compactions"] == 1
    assert_epoch_matches_cold_rebuild(live.epoch)


def test_epoch_ring_pins_old_epochs_until_history_runs_out(toy_kg):
    live = LiveGraph(toy_kg, history=4)
    rng = np.random.default_rng(29)
    epochs = [live.epoch]
    for _ in range(6):
        live.ingest(random_delta(toy_kg, 2, rng))
        epochs.append(live.epoch)
    # Recent epochs resolve exactly; beyond the ring the current answers.
    assert live.resolve(6) is epochs[6]
    assert live.resolve(4) is epochs[4]
    assert live.resolve(0) is epochs[6]
    assert live.resolve(None) is epochs[6]


def test_old_epoch_requests_bypass_the_cache_and_stay_exact(toy_kg):
    live = LiveGraph(toy_kg)
    rng = np.random.default_rng(31)
    targets = [0, 1, 2]
    live.ingest(random_delta(toy_kg, 3, rng))
    pinned = live.epoch.number
    live.ingest(random_delta(toy_kg, 3, rng))
    old = live.ppr_top_k(targets, 4, epoch=pinned)
    oracle = batch_ppr_top_k(
        artifacts_for(live.resolve(pinned).kg).csr("both"), targets, 4
    )
    assert old == oracle
    current = live.ppr_top_k(targets, 4)
    assert current == batch_ppr_top_k(artifacts_for(live.kg).csr("both"), targets, 4)


# -- delta-aware kernels ------------------------------------------------------


def test_ppr_cache_serves_untouched_targets_and_recomputes_dirty_ones(toy_kg):
    live = LiveGraph(toy_kg)
    targets = list(range(toy_kg.num_nodes))
    first = live.ppr_top_k(targets, 4)
    assert live.stats()["ppr_cache"]["misses"] == len(targets)
    again = live.ppr_top_k(targets, 4)
    assert again == first
    assert live.stats()["ppr_cache"]["hits"] >= len(targets)

    # A delta inside the disconnected movie domain (m0 -sequelOf-> m2)
    # must not invalidate the academic domain's retained entries.
    m0 = toy_kg.node_vocab.id("m0")
    m2 = toy_kg.node_vocab.id("m2")
    sequel = toy_kg.relation_vocab.id("sequelOf")
    live.ingest([[m0, sequel, m2]])
    stats = live.stats()["ppr_cache"]
    assert 0 < stats["invalidated"] < len(targets)

    refreshed = live.ppr_top_k(targets, 4)
    oracle = batch_ppr_top_k(artifacts_for(live.kg).csr("both"), targets, 4)
    assert refreshed == oracle


def test_ego_cache_invalidates_by_node_set(toy_kg):
    live = LiveGraph(toy_kg)
    roots = [toy_kg.node_vocab.id("p0"), toy_kg.node_vocab.id("m0")]
    first = live.ego_batch(roots, 2, 3, salt=9)
    m0 = toy_kg.node_vocab.id("m0")
    m2 = toy_kg.node_vocab.id("m2")
    sequel = toy_kg.relation_vocab.id("sequelOf")
    live.ingest([[m0, sequel, m2]])
    # The movie-domain ego is dirty, the paper-domain one survived.
    assert live.stats()["ego_cache"]["invalidated"] == 1
    refreshed = live.ego_batch(roots, 2, 3, salt=9)
    oracle = extract_ego_batch(live.kg, roots, 2, 3, 9)
    for ego, expected in zip(refreshed, oracle):
        assert np.array_equal(ego.nodes, expected.nodes)
    assert np.array_equal(first[0].nodes, refreshed[0].nodes)


def test_randomized_live_kernels_match_cold_rebuild_every_epoch(toy_kg):
    rng = np.random.default_rng(37)
    live = LiveGraph(toy_kg)
    targets = [int(t) for t in rng.choice(toy_kg.num_nodes, 6, replace=False)]
    for _ in range(5):
        live.ppr_top_k(targets, 4)          # keep the cache warm ...
        live.ego_batch(targets, 2, 3, salt=1)
        live.ingest(random_delta(toy_kg, int(rng.integers(1, 6)), rng))
        cold = live.epoch.cold_rebuild()    # ... and audit it after ingest
        assert live.ppr_top_k(targets, 4) == batch_ppr_top_k(
            artifacts_for(cold).csr("both"), targets, 4
        )
        for ego, expected in zip(
            live.ego_batch(targets, 2, 3, salt=1),
            extract_ego_batch(cold, targets, 2, 3, 1),
        ):
            assert np.array_equal(ego.nodes, expected.nodes)
            assert np.array_equal(ego.src, expected.src)
            assert np.array_equal(ego.dst, expected.dst)
            assert np.array_equal(ego.rel, expected.rel)


def test_kernel_cache_capacity_is_bounded(toy_kg):
    live = LiveGraph(toy_kg, cache_capacity=4)
    live.ppr_top_k(list(range(10)), 3)
    assert live.stats()["ppr_cache"]["entries"] <= 4
    live.ego_batch(list(range(10)), 1, 2, salt=0)
    assert live.stats()["ego_cache"]["entries"] <= 4
