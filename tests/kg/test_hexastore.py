"""Hexastore: every pattern must agree with brute-force filtering."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kg.hexastore import Hexastore
from repro.kg.triples import TripleStore

triple_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=8),
    ),
    max_size=50,
)


def _brute(triples, s=None, p=None, o=None):
    return {
        i
        for i, (ts, tp, to) in enumerate(triples)
        if (s is None or ts == s) and (p is None or tp == p) and (o is None or to == o)
    }


def test_match_all_components():
    store = TripleStore.from_triples([(0, 1, 2), (0, 1, 3), (4, 1, 2), (0, 2, 2)])
    hexa = Hexastore(store)
    assert set(hexa.match(subject=0, predicate=1, obj=2).tolist()) == {0}
    assert set(hexa.match(subject=0, predicate=1).tolist()) == {0, 1}
    assert set(hexa.match(predicate=1, obj=2).tolist()) == {0, 2}
    assert set(hexa.match(subject=0, obj=2).tolist()) == {0, 3}
    assert set(hexa.match(subject=0).tolist()) == {0, 1, 3}
    assert set(hexa.match(predicate=2).tolist()) == {3}
    assert set(hexa.match(obj=3).tolist()) == {1}
    assert set(hexa.match().tolist()) == {0, 1, 2, 3}


def test_match_missing_value_returns_empty():
    hexa = Hexastore(TripleStore.from_triples([(0, 0, 1)]))
    assert len(hexa.match(subject=99)) == 0
    assert len(hexa.match(predicate=99)) == 0


def test_count_matches_match():
    store = TripleStore.from_triples([(0, 1, 2), (0, 1, 3), (4, 1, 2)])
    hexa = Hexastore(store)
    assert hexa.count(subject=0) == 2
    assert hexa.count(predicate=1) == 3
    assert hexa.count() == 3
    assert hexa.count(subject=0, predicate=1, obj=2) == 1


def test_neighbor_accessors():
    store = TripleStore.from_triples([(0, 1, 2), (3, 1, 0), (0, 2, 4)])
    hexa = Hexastore(store)
    assert sorted(hexa.out_neighbors(0).tolist()) == [2, 4]
    assert sorted(hexa.in_neighbors(0).tolist()) == [3]
    assert sorted(hexa.neighbors(0).tolist()) == [2, 3, 4]
    assert sorted(hexa.objects(subject=0, predicate=1).tolist()) == [2]
    assert sorted(hexa.subjects(predicate=1, obj=0).tolist()) == [3]
    assert sorted(hexa.predicates(subject=0, obj=2).tolist()) == [1]


def test_triples_materialisation():
    store = TripleStore.from_triples([(0, 1, 2), (0, 1, 3)])
    hexa = Hexastore(store)
    assert hexa.triples(subject=0).to_set() == {(0, 1, 2), (0, 1, 3)}


def test_empty_store():
    hexa = Hexastore(TripleStore())
    assert len(hexa.match()) == 0
    assert hexa.count(subject=0) == 0
    assert len(hexa.neighbors(0)) == 0


def test_nbytes_counts_all_indices_once_materialized():
    hexa = Hexastore(TripleStore.from_triples([(0, 1, 2)] * 10))
    # Indices are lazy: nothing is resident before the first lookup.
    assert hexa.nbytes() == 0
    hexa.materialize()
    # 6 orders × (perm + 3 key arrays) × 10 entries × 8 bytes
    assert hexa.nbytes() == 6 * 4 * 10 * 8


def test_lazy_indices_build_only_what_lookups_touch():
    hexa = Hexastore(TripleStore.from_triples([(0, 1, 2), (3, 1, 4)]))
    hexa.match(subject=0)
    # One ordering (perm) + one sorted key column (the subject level).
    assert hexa.nbytes() == 2 * 2 * 8
    assert set(hexa.match(subject=0).tolist()) == {0}


def test_neighbors_unique_flag():
    store = TripleStore.from_triples([(0, 1, 2), (0, 2, 2), (3, 1, 0)])
    hexa = Hexastore(store)
    assert sorted(hexa.neighbors(0).tolist()) == [2, 3]
    raw = hexa.neighbors(0, unique=False)
    assert sorted(raw.tolist()) == [2, 2, 3]
    # One-sided nodes skip the concatenate entirely.
    assert hexa.neighbors(2, unique=False).tolist() == [0, 0]
    assert hexa.neighbors(2).tolist() == [0]


def test_batch_ranges_matches_per_key_match():
    triples = [(0, 1, 2), (0, 1, 3), (4, 1, 2), (0, 2, 2), (4, 2, 5)]
    hexa = Hexastore(TripleStore.from_triples(triples))
    values = np.asarray([0, 2, 4, 9])
    los, his, perm = hexa.batch_ranges({"p": 1}, "s", values)
    for value, lo, hi in zip(values, los, his):
        expected = set(hexa.match(subject=int(value), predicate=1).tolist())
        assert set(perm[lo:hi].tolist()) == expected


@settings(max_examples=60)
@given(triple_lists, st.integers(0, 8), st.integers(0, 3), st.integers(0, 8), st.data())
def test_match_agrees_with_bruteforce_property(triples, s, p, o, data):
    store = TripleStore.from_triples(triples)
    hexa = Hexastore(store)
    mask = data.draw(st.tuples(st.booleans(), st.booleans(), st.booleans()))
    qs = s if mask[0] else None
    qp = p if mask[1] else None
    qo = o if mask[2] else None
    got = set(hexa.match(subject=qs, predicate=qp, obj=qo).tolist())
    assert got == _brute(triples, qs, qp, qo)
    assert hexa.count(subject=qs, predicate=qp, obj=qo) == len(got)


def test_batch_ranges_composite_two_components():
    triples = [(0, 1, 2), (0, 1, 3), (4, 1, 2), (0, 2, 2), (4, 2, 5), (4, 1, 3)]
    hexa = Hexastore(TripleStore.from_triples(triples))
    values = np.asarray([[0, 2], [0, 3], [4, 2], [4, 9], [7, 7]])
    los, his, perm = hexa.batch_ranges({"p": 1}, ("s", "o"), values)
    for (s, o), lo, hi in zip(values, los, his):
        expected = set(hexa.match(subject=int(s), predicate=1, obj=int(o)).tolist())
        assert set(perm[lo:hi].tolist()) == expected


def test_batch_ranges_composite_without_constants():
    triples = [(0, 1, 2), (0, 2, 2), (3, 1, 0), (3, 1, 2)]
    hexa = Hexastore(TripleStore.from_triples(triples))
    values = np.asarray([[0, 2], [3, 2], [3, 0], [1, 1]])
    los, his, perm = hexa.batch_ranges({}, ("s", "o"), values)
    for (s, o), lo, hi in zip(values, los, his):
        expected = set(hexa.match(subject=int(s), obj=int(o)).tolist())
        assert set(perm[lo:hi].tolist()) == expected


def test_batch_ranges_composite_three_components():
    triples = [(0, 1, 2), (0, 2, 2), (3, 1, 0), (3, 1, 2)]
    hexa = Hexastore(TripleStore.from_triples(triples))
    values = np.asarray([[0, 1, 2], [3, 1, 2], [3, 2, 2], [0, 1, 0]])
    los, his, perm = hexa.batch_ranges({}, ("s", "p", "o"), values)
    for (s, p, o), lo, hi in zip(values, los, his):
        expected = set(hexa.match(subject=int(s), predicate=int(p), obj=int(o)).tolist())
        assert set(perm[lo:hi].tolist()) == expected


def test_batch_ranges_composite_empty_constant_window():
    triples = [(0, 1, 2), (4, 1, 2)]
    hexa = Hexastore(TripleStore.from_triples(triples))
    los, his, _perm = hexa.batch_ranges({"p": 9}, ("s", "o"), np.asarray([[0, 2]]))
    assert (los == his).all()


def test_batch_ranges_composite_column_mismatch():
    import pytest

    hexa = Hexastore(TripleStore.from_triples([(0, 1, 2)]))
    with pytest.raises(ValueError):
        hexa.batch_ranges({}, ("s", "o"), np.asarray([[0, 1, 2]]))


@settings(max_examples=40)
@given(triple_lists, st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=8))
def test_batch_ranges_composite_agrees_with_match_property(triples, pairs):
    hexa = Hexastore(TripleStore.from_triples(triples))
    values = np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
    los, his, perm = hexa.batch_ranges({}, ("o", "s"), values)
    for (o, s), lo, hi in zip(values, los, his):
        assert set(perm[lo:hi].tolist()) == _brute(triples, s=int(s), o=int(o))
