"""KnowledgeGraph: construction, access, subgraph invariants."""

import numpy as np
import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore
from repro.kg.vocabulary import Vocabulary


def test_build_from_terms(toy_kg):
    assert toy_kg.num_nodes == 15
    assert toy_kg.num_edges == 13
    assert toy_kg.num_node_types == 4  # Paper, Author, Venue, Movie
    assert toy_kg.num_edge_types == 4  # hasAuthor, publishedIn, cites, sequelOf


def test_node_types_length_validated():
    with pytest.raises(ValueError):
        KnowledgeGraph(
            node_vocab=Vocabulary(["a", "b"]),
            class_vocab=Vocabulary(["C"]),
            relation_vocab=Vocabulary(),
            node_types=np.asarray([0]),  # wrong length
            triples=TripleStore(),
        )


def test_triple_node_bounds_validated():
    with pytest.raises(ValueError):
        KnowledgeGraph(
            node_vocab=Vocabulary(["a"]),
            class_vocab=Vocabulary(["C"]),
            relation_vocab=Vocabulary(["r"]),
            node_types=np.asarray([0]),
            triples=TripleStore.from_triples([(0, 0, 5)]),
        )


def test_nodes_of_type(toy_kg):
    papers = toy_kg.nodes_of_type(toy_kg.class_vocab.id("Paper"))
    assert len(papers) == 6
    assert all(toy_kg.node_vocab.term(p).startswith("p") for p in papers)
    venues = toy_kg.nodes_of_type(toy_kg.class_vocab.id("Venue"))
    assert len(venues) == 2
    assert len(toy_kg.nodes_of_type(999)) == 0


def test_degrees(toy_kg):
    p0 = toy_kg.node_vocab.id("p0")
    # p0: hasAuthor, publishedIn, cites out; no in-edges.
    assert toy_kg.out_degree()[p0] == 3
    assert toy_kg.in_degree()[p0] == 0
    a0 = toy_kg.node_vocab.id("a0")
    assert toy_kg.in_degree()[a0] == 2
    assert toy_kg.degree()[a0] == 2


def test_neighbors(toy_kg):
    p0 = toy_kg.node_vocab.id("p0")
    out = {toy_kg.node_vocab.term(n) for n in toy_kg.out_neighbors(p0)}
    assert out == {"a0", "v0", "p2"}
    a0 = toy_kg.node_vocab.id("a0")
    ins = {toy_kg.node_vocab.term(n) for n in toy_kg.in_neighbors(a0)}
    assert ins == {"p0", "p1"}


def test_induced_subgraph_keeps_internal_edges(toy_kg):
    keep = np.asarray(
        [toy_kg.node_vocab.id(n) for n in ("p0", "p2", "a0", "v0")]
    )
    sub, mapping = toy_kg.induced_subgraph(keep)
    assert sub.num_nodes == 4
    terms = {
        (sub.node_vocab.term(s), sub.relation_vocab.term(p), sub.node_vocab.term(o))
        for s, p, o in sub.triples
    }
    assert terms == {("p0", "hasAuthor", "a0"), ("p0", "publishedIn", "v0"), ("p0", "cites", "p2")}


def test_induced_subgraph_compacts_types(toy_kg):
    keep = np.asarray([toy_kg.node_vocab.id("m0"), toy_kg.node_vocab.id("m1")])
    sub, mapping = toy_kg.induced_subgraph(keep)
    assert sub.num_node_types == 1
    assert list(sub.class_vocab) == ["Movie"]
    assert sub.num_edge_types == 1
    assert list(sub.relation_vocab) == ["sequelOf"]


def test_subgraph_mapping_roundtrip(toy_kg):
    keep = np.asarray([toy_kg.node_vocab.id("p0"), toy_kg.node_vocab.id("a0")])
    sub, mapping = toy_kg.induced_subgraph(keep)
    for new_id in range(sub.num_nodes):
        old_id = int(mapping.node_old_ids[new_id])
        assert mapping.node_old_to_new[old_id] == new_id
        assert sub.node_vocab.term(new_id) == toy_kg.node_vocab.term(old_id)
    assert mapping.to_new_nodes(mapping.to_old_nodes([0])) == [0]


def test_subgraph_from_triples_with_extra_nodes(toy_kg):
    triples = toy_kg.hexastore.triples(subject=toy_kg.node_vocab.id("p0"))
    isolated = toy_kg.node_vocab.id("p5")
    sub, mapping = toy_kg.subgraph_from_triples(triples, extra_nodes=np.asarray([isolated]))
    assert "p5" in sub.node_vocab
    new_p5 = mapping.node_old_to_new[isolated]
    assert sub.degree()[new_p5] == 0  # isolated but present


def test_subgraph_node_types_preserved(toy_kg):
    keep = np.arange(toy_kg.num_nodes)
    sub, mapping = toy_kg.induced_subgraph(keep)
    assert sub.num_nodes == toy_kg.num_nodes
    assert sub.num_edges == toy_kg.num_edges
    for new_id in range(sub.num_nodes):
        old_id = int(mapping.node_old_ids[new_id])
        old_class = toy_kg.class_vocab.term(int(toy_kg.node_types[old_id]))
        new_class = sub.class_vocab.term(int(sub.node_types[new_id]))
        assert old_class == new_class


def test_nbytes(toy_kg):
    assert toy_kg.nbytes() > 0
