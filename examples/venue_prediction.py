"""Venue prediction (the paper's motivating workload) across all methods.

Reproduces the Figure 1 / Figure 6 story on one workload: train four HGNN
methods — full-batch RGCN, GraphSAINT, ShaDowSAINT, SeHGNN — on the full
MAG-style graph, on a handcrafted OGBN-MAG-style subset, and on the
automatically extracted KG-TOSA d1h1 subgraph.

Run:  python examples/venue_prediction.py
"""

from repro.bench.harness import NC_MODELS, RUN_HEADERS, render_table, run_nc_method
from repro.core import extract_tosg
from repro.datasets import mag, ogbn_mag_subset
from repro.models import ModelConfig
from repro.training import TrainConfig


def main() -> None:
    bundle = mag(scale="tiny", seed=7)
    task = bundle.task("PV")
    handcrafted = ogbn_mag_subset(bundle)
    tosa = extract_tosg(bundle.kg, task, method="sparql", direction=1, hops=1)

    graphs = [
        ("FG", bundle.kg, task, 0.0),
        ("OGBN-MAG", handcrafted.kg, handcrafted.task("PV"), 0.0),
        ("KG-TOSAd1h1", tosa.subgraph, tosa.task, tosa.extraction_seconds),
    ]
    config = ModelConfig(hidden_dim=24, num_layers=2, dropout=0.1, lr=0.02)
    train_config = TrainConfig(epochs=8, eval_every=2)

    runs = []
    for method in NC_MODELS:
        for label, graph, graph_task, preprocess in graphs:
            run = run_nc_method(
                method, graph, graph_task, config, train_config,
                graph_label=label, preprocess_seconds=preprocess,
            )
            runs.append(run)
            print(f"finished {method} on {label}: acc={run.metric:.3f}")
    print()
    print(render_table(RUN_HEADERS, [r.cells() for r in runs],
                       title="Paper-venue prediction: FG vs handcrafted vs KG-TOSA"))
    print("\nExpected shape: both subsets cut time & memory; the handcrafted "
          "subset trades accuracy, KG-TOSA keeps or improves it.")


if __name__ == "__main__":
    main()
