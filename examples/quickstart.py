"""Quickstart: extract a task-oriented subgraph and train on it.

Runs the full KG-TOSA pipeline end to end on a synthetic MAG-style KG:

1. generate the KG and the paper-venue (PV) node-classification task;
2. extract the TOSG with the SPARQL-based method (Algorithm 3, d1h1);
3. train GraphSAINT on the full graph and on the TOSG;
4. compare accuracy, training time, modeled memory and model size.

Run:  python examples/quickstart.py
"""

from repro.core import extract_tosg
from repro.datasets import mag
from repro.models import GraphSAINTClassifier, ModelConfig
from repro.training import ResourceMeter, TrainConfig, train_node_classifier


def main() -> None:
    print("== 1. Generate a MAG-style knowledge graph ==")
    bundle = mag(scale="small", seed=7)
    kg = bundle.kg
    task = bundle.task("PV")
    print(f"   {kg}")
    print(f"   task: {task.describe()}")

    print("\n== 2. Extract the TOSG (SPARQL method, d=1, h=1) ==")
    tosa = extract_tosg(kg, task, method="sparql", direction=1, hops=1)
    print(f"   {tosa.subgraph}")
    print(f"   extraction took {tosa.extraction_seconds:.2f}s; "
          f"kept {tosa.reduction_ratio:.1%} of the edges, all {tosa.task.num_targets} targets")

    print("\n== 3. Train GraphSAINT on FG and on KG' ==")
    config = ModelConfig(hidden_dim=24, num_layers=2, dropout=0.1, lr=0.02)
    train_config = TrainConfig(epochs=10, eval_every=2)
    rows = []
    for label, graph, graph_task in (("FG", kg, task), ("KG'", tosa.subgraph, tosa.task)):
        meter = ResourceMeter()
        model = GraphSAINTClassifier(graph, graph_task, config, meter=meter)
        result = train_node_classifier(model, graph_task, train_config, meter)
        rows.append((label, result))
        print(f"   {label:4s} accuracy={result.test_metric:.3f} "
              f"time={result.train_seconds:5.1f}s "
              f"memory={meter.peak_bytes / 1e6:6.1f}MB "
              f"params={result.num_parameters}")

    print("\n== 4. Summary ==")
    fg, tosg = rows[0][1], rows[1][1]
    print(f"   speedup: {fg.train_seconds / max(tosg.train_seconds, 1e-9):.1f}x, "
          f"memory: {fg.peak_memory_bytes / max(tosg.peak_memory_bytes, 1):.1f}x smaller, "
          f"model: {fg.num_parameters / max(tosg.num_parameters, 1):.1f}x smaller, "
          f"accuracy: {fg.test_metric:.3f} -> {tosg.test_metric:.3f}")


if __name__ == "__main__":
    main()
