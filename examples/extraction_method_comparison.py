"""Compare the three TOSG extraction mechanisms (the Figure 8 story).

Extracts a TOSG for the place-country task on a YAGO-style KG with BRW
(Algorithm 1), IBS (Algorithm 2), and the SPARQL-based method in its four
(d, h) variations (Algorithm 3), then reports subgraph quality (Table III
indicators) and extraction cost for each.

Run:  python examples/extraction_method_comparison.py
"""

import numpy as np

from repro.bench.harness import render_table
from repro.core import evaluate_quality, extract_tosg
from repro.datasets import yago4


def main() -> None:
    bundle = yago4(scale="small", seed=17)
    task = bundle.task("PC")
    print(f"KG: {bundle.kg}")
    print(f"task: {task.describe()}\n")

    variants = [
        ("brw", {"walk_length": 3, "batch_size": 20000}),
        ("ibs", {"top_k": 16, "eps": 2e-3}),
        ("sparql", {"direction": 1, "hops": 1}),
        ("sparql", {"direction": 2, "hops": 1}),
        ("sparql", {"direction": 1, "hops": 2}),
        ("sparql", {"direction": 2, "hops": 2}),
    ]
    rows = []
    for method, kwargs in variants:
        result = extract_tosg(
            bundle.kg, task, method=method, rng=np.random.default_rng(17), **kwargs
        )
        quality = evaluate_quality(result.subgraph, result.task, sampler=result.method)
        rows.append([
            result.method,
            str(result.subgraph.num_nodes),
            str(result.subgraph.num_edges),
            str(result.subgraph.num_node_types),
            str(result.subgraph.num_edge_types),
            f"{quality.target_ratio_pct:.1f}",
            f"{quality.disconnected_pct:.1f}",
            f"{quality.avg_distance_to_target:.2f}",
            f"{quality.entropy:.2f}",
            f"{result.extraction_seconds:.3f}",
        ])
        print(f"extracted with {result.method}: "
              f"{result.subgraph.num_nodes} nodes in {result.extraction_seconds:.3f}s")

    print()
    print(render_table(
        ["method", "|V'|", "|T'|", "|C'|", "|R'|", "VT%", "discon%", "dist", "entropy", "time(s)"],
        rows, title="Extraction methods on PC/YAGO",
    ))
    print("\nExpected shape: all methods eliminate disconnected vertices; the "
          "SPARQL variants extract in a fraction of IBS's time.")


if __name__ == "__main__":
    main()
