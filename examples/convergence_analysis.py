"""Convergence analysis (the Figure 9 story).

Trains GraphSAINT on the genre-classification task of a noisy YAGO-style
KG twice — on the full graph and on the KG-TOSA d1h1 subgraph — and prints
the accuracy-vs-wall-clock trace of both runs as an ASCII chart.

Run:  python examples/convergence_analysis.py
"""

from repro.core import extract_tosg
from repro.datasets import yago4
from repro.models import GraphSAINTClassifier, ModelConfig
from repro.training import ResourceMeter, TrainConfig, train_node_classifier


def ascii_chart(traces, width=64, height=12):
    """Render {label: [(seconds, metric), ...]} as a crude scatter chart."""
    points = [(x, y, label) for label, series in traces.items() for x, y in series]
    if not points:
        return "(no data)"
    max_x = max(x for x, _y, _l in points) or 1.0
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    markers = {}
    for index, label in enumerate(traces):
        markers[label] = chr(ord("A") + index)
    for x, y, label in points:
        col = int(x / max_x * width)
        row = height - int(max(min(y, 1.0), 0.0) * height)
        grid[row][col] = markers[label]
    lines = ["accuracy"]
    for row_index, row in enumerate(grid):
        axis = f"{1.0 - row_index / height:4.1f} |"
        lines.append(axis + "".join(row))
    lines.append("     +" + "-" * (width + 1) + f"> time ({max_x:.1f}s)")
    for label, marker in markers.items():
        lines.append(f"     {marker} = {label}")
    return "\n".join(lines)


def main() -> None:
    bundle = yago4(scale="small", seed=17)
    task = bundle.task("CG")
    tosa = extract_tosg(bundle.kg, task, method="sparql", direction=1, hops=1)
    print(f"FG:  {bundle.kg}")
    print(f"KG': {tosa.subgraph}\n")

    config = ModelConfig(hidden_dim=24, num_layers=2, dropout=0.1, lr=0.02)
    train_config = TrainConfig(epochs=12, eval_every=1)
    traces = {}
    for label, graph, graph_task in (("FG", bundle.kg, task), ("KG'", tosa.subgraph, tosa.task)):
        meter = ResourceMeter()
        model = GraphSAINTClassifier(graph, graph_task, config, meter=meter)
        result = train_node_classifier(model, graph_task, train_config, meter)
        traces[label] = [(p.seconds, p.valid_metric) for p in result.trace]
        print(f"{label:4s} final accuracy={result.test_metric:.3f} "
              f"total time={result.train_seconds:.1f}s")

    print()
    print(ascii_chart(traces))
    print("\nExpected shape: the KG' curve (B) climbs much earlier — the "
          "model converges in a fraction of the FG wall-clock.")


if __name__ == "__main__":
    main()
