"""Link prediction under a memory budget (the paper's Figure 7 story).

Predicts author affiliations (the AA task) on a DBLP-style KG with RGCN
and MorsE, under a modeled-memory budget that full-batch RGCN exceeds on
the full graph — reproducing the paper's "RGCN exceeded 3 TB on DBLP-15M,
but finished in 35 GB on KG'" result.

Run:  python examples/affiliation_link_prediction.py
"""

from repro.bench.harness import RUN_HEADERS, render_table, run_lp_method
from repro.core import extract_tosg
from repro.datasets import dblp
from repro.models import ModelConfig
from repro.training import TrainConfig

BUDGET_MB = 12.0  # plays the role of the paper's 3 TB VM limit


def main() -> None:
    bundle = dblp(scale="small", seed=13)
    task = bundle.task("AA")
    print(f"KG: {bundle.kg}")
    print(f"task: {task.describe()}")

    tosa = extract_tosg(bundle.kg, task, method="sparql", direction=2, hops=1)
    print(f"KG': {tosa.subgraph} (extracted in {tosa.extraction_seconds:.2f}s)\n")

    config = ModelConfig(hidden_dim=32, num_layers=1, lr=0.03, batch_size=512, margin=2.0)
    train_config = TrainConfig(epochs=40, eval_every=10, num_eval_negatives=40)
    budget = int(BUDGET_MB * 1e6)

    runs = []
    for method in ("RGCN", "MorsE"):
        for label, graph, graph_task, preprocess in (
            ("FG", bundle.kg, task, 0.0),
            ("KG-TOSAd2h1", tosa.subgraph, tosa.task, tosa.extraction_seconds),
        ):
            run = run_lp_method(
                method, graph, graph_task, config, train_config,
                graph_label=label, preprocess_seconds=preprocess, budget_bytes=budget,
            )
            runs.append(run)
            status = "OOM" if run.oom else f"hits@10={run.metric:.3f}"
            print(f"finished {method} on {label}: {status}")

    print()
    print(render_table(RUN_HEADERS, [r.cells() for r in runs],
                       title=f"AA/DBLP under a {BUDGET_MB:.0f} MB modeled-memory budget"))
    print("\nExpected shape: RGCN exceeds the budget on FG but trains on KG'; "
          "MorsE fits everywhere and improves with KG'.")


if __name__ == "__main__":
    main()
