"""Multi-label keyword prediction (the Definition 2.2 extension).

The paper's Definition 2.2 includes multi-label node classification
("predicting keywords of a paper") but the evaluation covers only the
single-label case.  This example exercises the extension: predict each
paper's keyword set on the MAG-style KG, on the full graph and on the
KG-TOSA d1h1 subgraph, scored with micro-F1.

Run:  python examples/multilabel_keywords.py
"""

import numpy as np

from repro.core import extract_tosg, micro_f1
from repro.core.multilabel import remap_multilabel_task
from repro.datasets import mag
from repro.models import ModelConfig, RGCNMultiLabelClassifier
from repro.training import ResourceMeter


def train(kg, task, epochs=30, seed=0):
    meter = ResourceMeter()
    model = RGCNMultiLabelClassifier(
        kg, task, ModelConfig(hidden_dim=24, num_layers=2, lr=0.03, seed=seed), meter=meter
    )
    rng = np.random.default_rng(seed)
    import time

    start = time.perf_counter()
    for _ in range(epochs):
        model.train_epoch(rng)
    elapsed = time.perf_counter() - start
    predictions = model.predict_labels()
    test = task.split.test
    score = micro_f1(predictions[test], task.labels[test])
    return score, elapsed, meter.peak_bytes / 1e6, model.num_parameters()


def main() -> None:
    bundle = mag(scale="small", seed=7)
    pk = bundle.task("PK")
    print(f"KG: {bundle.kg}")
    print(f"task: PK — {pk.num_targets} papers × {pk.num_labels} keywords (micro-F1)\n")

    # The PV extraction pattern doubles for PK: same target class.
    tosa = extract_tosg(bundle.kg, bundle.task("PV"), method="sparql", direction=1, hops=1)
    pk_on_tosg = remap_multilabel_task(pk, tosa.subgraph, tosa.mapping)

    for label, (kg, task) in (("FG ", (bundle.kg, pk)), ("KG'", (tosa.subgraph, pk_on_tosg))):
        score, elapsed, memory_mb, params = train(kg, task)
        print(f"{label} micro-F1={score:.3f} time={elapsed:5.1f}s "
              f"memory={memory_mb:6.1f}MB params={params}")

    print("\nExpected shape: the TOSG preserves keyword signal (venue-affine "
          "wiring) at a fraction of the cost — the multi-label case behaves "
          "like the paper's single-label tasks.")


if __name__ == "__main__":
    main()
